//! HTTP/1.1 conformance suite for the epoll event-loop accept path
//! (DESIGN.md §13): keep-alive reuse, `Connection: close`, pipelining
//! order, framing-error closes, slow-loris timeouts, graceful drain of
//! in-flight pipelines, and byte-identity between the event-loop and
//! thread-pool models.
//!
//! Everything here drives real sockets against an in-process server.
//! The suite is Linux-only (the event loop is).

#![cfg(target_os = "linux")]

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xclean::{XCleanConfig, XCleanEngine};
use xclean_server::{AcceptModel, DrainReport, ServerConfig, ShutdownFlag, SuggestServer};
use xclean_xmltree::parse_document;

fn engine() -> Arc<XCleanEngine> {
    let xml = "<dblp>\
        <article><author>jones</author><title>health insurance markets</title></article>\
        <article><author>smith</author><title>program instance analysis</title></article>\
        <article><author>chen</author><title>data integration systems</title></article>\
    </dblp>";
    Arc::new(XCleanEngine::new(
        parse_document(xml).unwrap(),
        XCleanConfig::default(),
    ))
}

struct Running {
    addr: std::net::SocketAddr,
    flag: ShutdownFlag,
    join: std::thread::JoinHandle<DrainReport>,
}

fn event_loop_config() -> ServerConfig {
    ServerConfig {
        accept_model: AcceptModel::EventLoop,
        threads: 2,
        ..Default::default()
    }
}

/// A corpus big enough that a 1024-query batch takes real wall-clock
/// time — the drain test needs a request that is provably still in
/// flight when the shutdown flag trips.
fn big_engine() -> Arc<XCleanEngine> {
    const A: [&str; 20] = [
        "data", "index", "query", "graph", "table", "merge", "parse", "token", "score", "cache",
        "batch", "shard", "trace", "probe", "chunk", "frame", "stack", "queue", "field", "label",
    ];
    const B: [&str; 20] = [
        "wise", "ford", "hart", "lane", "mont", "ship", "ton", "berg", "dale", "wick", "combe",
        "stone", "mark", "path", "well", "gate", "holm", "firth", "moor", "stead",
    ];
    let mut xml = String::from("<dblp>");
    for i in 0..400usize {
        xml.push_str("<article><author>");
        xml.push_str(A[i % 20]);
        xml.push_str(B[(i / 20) % 20]);
        xml.push_str("</author><title>");
        for k in 0..6 {
            if k > 0 {
                xml.push(' ');
            }
            xml.push_str(A[(i + 7 * k) % 20]);
            xml.push_str(B[(i / 3 + 5 * k) % 20]);
        }
        xml.push_str("</title></article>");
    }
    xml.push_str("</dblp>");
    Arc::new(XCleanEngine::new(
        parse_document(&xml).unwrap(),
        XCleanConfig::default(),
    ))
}

/// A 1024-query batch body of distinct misspelled multi-keyword
/// queries over [`big_engine`]'s vocabulary (`salt` keeps separate
/// batches from ever sharing a query).
fn slow_batch_body(salt: usize) -> String {
    const A: [&str; 20] = [
        "data", "index", "query", "graph", "table", "merge", "parse", "token", "score", "cache",
        "batch", "shard", "trace", "probe", "chunk", "frame", "stack", "queue", "field", "label",
    ];
    const B: [&str; 20] = [
        "wise", "ford", "hart", "lane", "mont", "ship", "ton", "berg", "dale", "wick", "combe",
        "stone", "mark", "path", "well", "gate", "holm", "firth", "moor", "stead",
    ];
    let queries: Vec<String> = (0..1024usize)
        .map(|i| {
            let n = salt * 1024 + i;
            // Misspell by doubling the first letter: stays within edit
            // distance 1 of a real vocabulary term.
            format!(
                "\"{}{}{} {}{}{}\"",
                &A[n % 20][..1],
                A[n % 20],
                B[(n / 20) % 20],
                &A[(n / 3) % 20][..1],
                A[(n / 3) % 20],
                B[(n / 7) % 20]
            )
        })
        .collect();
    format!("{{\"queries\": [{}]}}", queries.join(","))
}

fn start(config: ServerConfig) -> Running {
    start_with(engine(), config)
}

fn start_with(engine: Arc<XCleanEngine>, config: ServerConfig) -> Running {
    let server = SuggestServer::bind(engine, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let join = std::thread::spawn(move || server.run().unwrap());
    Running { addr, flag, join }
}

impl Running {
    fn stop(self) -> DrainReport {
        self.flag.trigger();
        self.join.join().unwrap()
    }
}

/// One parsed response read off an open stream (keep-alive aware:
/// reads exactly head + `Content-Length` bytes, leaving the socket
/// usable for the next response).
#[derive(Debug)]
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one complete response; `None` on clean EOF before any byte.
fn read_response(stream: &mut TcpStream) -> Option<Response> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    // Head first, byte by byte (simple and plenty fast for tests).
    while !buf.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(0) => {
                assert!(
                    buf.is_empty(),
                    "EOF mid-head: {:?}",
                    String::from_utf8_lossy(&buf)
                );
                return None;
            }
            Ok(_) => buf.push(byte[0]),
            Err(e) => panic!("read error mid-head: {e}"),
        }
    }
    let head = String::from_utf8(buf).unwrap();
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().unwrap())
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).unwrap();
    Some(Response {
        status,
        headers,
        body: String::from_utf8(body).unwrap(),
    })
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn get_request(path: &str, extra_headers: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\n{extra_headers}\r\n")
}

#[test]
fn keep_alive_reuses_one_socket_for_many_requests() {
    let run = start(event_loop_config());
    let mut stream = connect(run.addr);
    let mut bodies = Vec::new();
    // ≥3 requests over the same socket, strictly request→response.
    for i in 0..4 {
        let path = if i % 2 == 0 {
            "/suggest?q=helth+insurance".to_string()
        } else {
            "/healthz".to_string()
        };
        stream.write_all(get_request(&path, "").as_bytes()).unwrap();
        let response = read_response(&mut stream).expect("keep-alive socket stayed open");
        assert_eq!(response.status, 200, "request {i}");
        assert_eq!(
            response.header("connection"),
            Some("keep-alive"),
            "request {i}"
        );
        bodies.push(response.body);
    }
    assert_eq!(bodies[0], bodies[2], "same query, same bytes");
    let report = run.stop();
    assert!(
        report.keepalive_reuse >= 3,
        "3 of 4 requests reused the connection: {report:?}"
    );
    assert_eq!(report.connections, 1, "{report:?}");
}

#[test]
fn connection_close_is_honored() {
    let run = start(event_loop_config());
    let mut stream = connect(run.addr);
    stream
        .write_all(get_request("/healthz", "Connection: close\r\n").as_bytes())
        .unwrap();
    let response = read_response(&mut stream).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("close"));
    // The server closes: next read is EOF.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "{:?}", String::from_utf8_lossy(&rest));
    run.stop();
}

#[test]
fn pipelined_requests_answer_in_order_with_matching_request_ids() {
    let run = start(event_loop_config());
    let mut stream = connect(run.addr);
    // Three requests written back-to-back before reading anything, each
    // tagged with its own X-Request-Id. Mixing cheap (/healthz) and
    // engine-bound (/suggest) paths makes out-of-order completion likely
    // if ordering were broken.
    let mut wire = String::new();
    wire.push_str(&get_request(
        "/suggest?q=helth+insurance",
        "X-Request-Id: pipe-0\r\n",
    ));
    wire.push_str(&get_request("/healthz", "X-Request-Id: pipe-1\r\n"));
    wire.push_str(&get_request(
        "/suggest?q=dta+integration",
        "X-Request-Id: pipe-2\r\n",
    ));
    stream.write_all(wire.as_bytes()).unwrap();
    for i in 0..3 {
        let response = read_response(&mut stream).expect("pipelined response");
        assert_eq!(response.status, 200, "response {i}");
        assert_eq!(
            response.header("x-request-id"),
            Some(format!("pipe-{i}").as_str()),
            "responses must arrive in request order"
        );
    }
    run.stop();
}

#[test]
fn malformed_request_gets_400_and_close() {
    let run = start(event_loop_config());
    let mut stream = connect(run.addr);
    stream
        .write_all(b"utter nonsense\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n")
        .unwrap();
    let response = read_response(&mut stream).unwrap();
    assert_eq!(response.status, 400);
    assert_eq!(response.header("connection"), Some("close"));
    assert!(read_response(&mut stream).is_none(), "socket closed");
    run.stop();
}

#[test]
fn oversized_body_gets_413_and_close() {
    let run = start(ServerConfig {
        max_body_bytes: 64,
        ..event_loop_config()
    });
    let mut stream = connect(run.addr);
    stream
        .write_all(b"POST /suggest HTTP/1.1\r\nHost: t\r\nContent-Length: 100000\r\n\r\n")
        .unwrap();
    let response = read_response(&mut stream).unwrap();
    assert_eq!(response.status, 413);
    assert_eq!(response.header("connection"), Some("close"));
    assert!(read_response(&mut stream).is_none(), "socket closed");
    run.stop();
}

#[test]
fn slow_loris_times_out_with_408_without_wedging_the_loop() {
    let run = start(ServerConfig {
        read_timeout: Duration::from_millis(500),
        ..event_loop_config()
    });
    // The loris: dribbles one byte at a time, never finishing its head.
    // It stops dribbling before the deadline so the 408 is read off a
    // quiet socket (a write racing the server's close would RST away
    // the buffered response).
    let mut loris = connect(run.addr);
    let partial = b"GET /suggest?q=helth HTTP/1.1\r\nX-Loris: y";
    for chunk in partial[..12].chunks(1) {
        loris.write_all(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(25));
        // While the loris dribbles, other clients are served normally —
        // the loop is not wedged.
        let mut healthy = connect(run.addr);
        healthy
            .write_all(get_request("/healthz", "").as_bytes())
            .unwrap();
        assert_eq!(read_response(&mut healthy).unwrap().status, 200);
    }
    // The deadline runs from the loris's FIRST byte; dribbling later
    // bytes must not have reset it. ~500 ms after that first byte the
    // 408 arrives (the blocking read below waits for it).
    let response = read_response(&mut loris).expect("a 408, not a dropped socket");
    assert_eq!(response.status, 408);
    assert_eq!(response.header("connection"), Some("close"));
    assert!(read_response(&mut loris).is_none(), "socket closed");
    run.stop();
}

#[test]
fn graceful_drain_completes_in_flight_pipeline_and_announces_close() {
    // One worker thread and a genuinely slow first request, so the drain
    // provably begins while responses are still owed on an open
    // keep-alive pipeline.
    let run = start_with(
        big_engine(),
        ServerConfig {
            threads: 1,
            cache_entries: 0,
            ..event_loop_config()
        },
    );

    // Calibrate: time one slow batch end-to-end, then trigger the real
    // drain a quarter of the way into an identical batch. Parsing and
    // dispatch happen on the loop thread within microseconds of the
    // bytes landing, so at that point the batch is mid-computation and
    // the two requests pipelined behind it are queued.
    let calibration = {
        let mut stream = connect(run.addr);
        let body = slow_batch_body(0);
        let started = Instant::now();
        write!(
            stream,
            "POST /suggest HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        assert_eq!(read_response(&mut stream).unwrap().status, 200);
        started.elapsed()
    };
    assert!(
        calibration >= Duration::from_millis(40),
        "batch too fast ({calibration:?}) to make the drain race meaningful; grow big_engine"
    );

    let mut stream = connect(run.addr);
    let body = slow_batch_body(1);
    let mut wire = format!(
        "POST /suggest HTTP/1.1\r\nHost: t\r\nX-Request-Id: drain-0\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    wire.push_str(&get_request("/healthz", "X-Request-Id: drain-1\r\n"));
    wire.push_str(&get_request(
        "/suggest?q=ddatawise",
        "X-Request-Id: drain-2\r\n",
    ));
    stream.write_all(wire.as_bytes()).unwrap();
    std::thread::sleep(calibration / 4);
    run.flag.trigger();

    // Every pipelined response still arrives, in order; the last one
    // carries Connection: close instead of the socket being dropped.
    for (i, (id, connection)) in [
        ("drain-0", "keep-alive"),
        ("drain-1", "keep-alive"),
        ("drain-2", "close"),
    ]
    .iter()
    .enumerate()
    {
        let response = read_response(&mut stream)
            .unwrap_or_else(|| panic!("drain dropped pipelined response {i}"));
        assert_eq!(response.status, 200, "response {i}");
        assert_eq!(
            response.header("x-request-id"),
            Some(*id),
            "order preserved under drain"
        );
        assert_eq!(
            response.header("connection"),
            Some(*connection),
            "response {i}"
        );
    }
    assert!(
        read_response(&mut stream).is_none(),
        "socket closed after final response"
    );
    let report = run.join.join().unwrap();
    assert_eq!(report.requests, 4, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
}

#[test]
fn suggestion_bodies_are_byte_identical_across_accept_models() {
    let pool = start(ServerConfig {
        accept_model: AcceptModel::ThreadPool,
        threads: 2,
        cache_entries: 0,
        ..Default::default()
    });
    let event = start(ServerConfig {
        accept_model: AcceptModel::EventLoop,
        threads: 2,
        cache_entries: 0,
        ..Default::default()
    });
    let cases = [
        ("GET", "/suggest?q=helth+insurance", String::new()),
        ("GET", "/suggest?q=dta+integration", String::new()),
        ("GET", "/suggest?q=progrm+instance", String::new()),
        (
            "POST",
            "/suggest",
            r#"{"queries": ["helth insurance", "program instence", "zzz qqq"]}"#.to_string(),
        ),
        ("POST", "/suggest", r#"{"query": "smith"}"#.to_string()),
        ("GET", "/suggest?q=...", String::new()), // error body too
    ];
    for (method, path, body) in &cases {
        let fetch = |addr| {
            let mut stream = connect(addr);
            write!(
                stream,
                "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .unwrap();
            read_response(&mut stream).unwrap()
        };
        let via_pool = fetch(pool.addr);
        let via_event = fetch(event.addr);
        assert_eq!(via_pool.status, via_event.status, "{method} {path}");
        assert_eq!(
            via_pool.body, via_event.body,
            "bodies must be byte-identical across accept models: {method} {path}"
        );
    }
    pool.stop();
    event.stop();
}

#[test]
fn half_close_still_gets_its_response() {
    let run = start(event_loop_config());
    let mut stream = connect(run.addr);
    stream
        .write_all(get_request("/healthz", "").as_bytes())
        .unwrap();
    // Client shuts down its writing half immediately (EOF at the
    // server) — the already-sent request must still be answered.
    stream.shutdown(Shutdown::Write).unwrap();
    let response = read_response(&mut stream).expect("half-closed client is still answered");
    assert_eq!(response.status, 200);
    assert!(read_response(&mut stream).is_none());
    run.stop();
}

#[test]
fn idle_keep_alive_connection_is_closed_after_timeout() {
    let run = start(ServerConfig {
        keep_alive_timeout: Duration::from_millis(300),
        ..event_loop_config()
    });
    let mut stream = connect(run.addr);
    stream
        .write_all(get_request("/healthz", "").as_bytes())
        .unwrap();
    assert_eq!(read_response(&mut stream).unwrap().status, 200);
    // Sit idle past the keep-alive horizon: the server closes silently.
    let mut buf = [0u8; 1];
    match stream.read(&mut buf) {
        Ok(0) => {} // clean EOF
        Ok(_) => panic!("unexpected bytes on an idle connection"),
        Err(e) => assert!(
            matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
            "{e}"
        ),
    }
    run.stop();
}

#[test]
fn event_loop_sustains_a_thousand_concurrent_keep_alive_connections() {
    let run = start(ServerConfig {
        accept_model: AcceptModel::EventLoop,
        threads: 2,
        max_connections: 2048,
        ..Default::default()
    });
    // Open 1050 keep-alive connections in waves (the listen backlog is
    // finite), then make two requests on every socket.
    const CONNS: usize = 1050;
    let mut sockets = Vec::with_capacity(CONNS);
    for wave in 0..(CONNS / 50) {
        for _ in 0..50 {
            sockets.push(connect(run.addr));
        }
        // A breath per wave keeps SYN bursts under the backlog.
        if wave % 4 == 3 {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    for round in 0..2 {
        for (i, stream) in sockets.iter_mut().enumerate() {
            stream
                .write_all(get_request("/healthz", "").as_bytes())
                .unwrap();
            let response = read_response(stream)
                .unwrap_or_else(|| panic!("conn {i} dropped in round {round}"));
            assert_eq!(response.status, 200, "conn {i} round {round}");
            assert_eq!(response.header("connection"), Some("keep-alive"));
        }
    }
    drop(sockets);
    let report = run.stop();
    assert_eq!(report.connections, CONNS as u64, "{report:?}");
    assert_eq!(report.requests, 2 * CONNS as u64, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.keepalive_reuse, CONNS as u64, "{report:?}");
}
