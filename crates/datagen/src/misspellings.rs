//! Common human misspellings (the RULE error source, §VII-A).
//!
//! The paper perturbs queries with Wikipedia's editor-maintained "list of
//! common misspellings" (also used by Aspell). We embed a table of real
//! pairs from that public-domain list, and complement it with *cognitive
//! misspelling rules* (vowel confusion, consonant doubling, suffix
//! confusion, transposition) so that any vocabulary word can receive a
//! human-like misspelling. Rule-generated errors have larger average edit
//! distance than single random edits — the property §VII-D credits for
//! RULE queries being slower to clean.

use rand::Rng;

/// `(misspelling, correction)` pairs from the Wikipedia/Aspell common
/// misspellings list (a representative public-domain subset).
pub const COMMON_MISSPELLINGS: &[(&str, &str)] = &[
    ("abandonned", "abandoned"),
    ("aberation", "aberration"),
    ("abilityes", "abilities"),
    ("abreviation", "abbreviation"),
    ("acadamy", "academy"),
    ("accademic", "academic"),
    ("accesible", "accessible"),
    ("accomodate", "accommodate"),
    ("acheive", "achieve"),
    ("acheivement", "achievement"),
    ("acknowlege", "acknowledge"),
    ("acording", "according"),
    ("acquaintence", "acquaintance"),
    ("adress", "address"),
    ("agression", "aggression"),
    ("agressive", "aggressive"),
    ("alchohol", "alcohol"),
    ("algoritm", "algorithm"),
    ("algorithem", "algorithm"),
    ("alot", "allot"),
    ("ammount", "amount"),
    ("anual", "annual"),
    ("apparant", "apparent"),
    ("appearence", "appearance"),
    ("arbitary", "arbitrary"),
    ("archetecture", "architecture"),
    ("archaelogy", "archaeology"),
    ("assasination", "assassination"),
    ("athiest", "atheist"),
    ("availble", "available"),
    ("avalable", "available"),
    ("basicly", "basically"),
    ("begining", "beginning"),
    ("beleive", "believe"),
    ("belive", "believe"),
    ("benifit", "benefit"),
    ("bouddhist", "buddhist"),
    ("brillant", "brilliant"),
    ("buisness", "business"),
    ("calender", "calendar"),
    ("catagory", "category"),
    ("cemetary", "cemetery"),
    ("changable", "changeable"),
    ("charactor", "character"),
    ("cheif", "chief"),
    ("collegue", "colleague"),
    ("comming", "coming"),
    ("commitee", "committee"),
    ("comparision", "comparison"),
    ("compatability", "compatibility"),
    ("completly", "completely"),
    ("concious", "conscious"),
    ("condidtion", "condition"),
    ("consciencious", "conscientious"),
    ("concensus", "consensus"),
    ("contructed", "constructed"),
    ("continous", "continuous"),
    ("controll", "control"),
    ("comittee", "committee"),
    ("critisism", "criticism"),
    ("definately", "definitely"),
    ("definiton", "definition"),
    ("delimeter", "delimiter"),
    ("dependancy", "dependency"),
    ("desgin", "design"),
    ("determin", "determine"),
    ("developement", "development"),
    ("diffrent", "different"),
    ("dictionnary", "dictionary"),
    ("dissapear", "disappear"),
    ("docuemnt", "document"),
    ("documnet", "document"),
    ("ecomonic", "economic"),
    ("efficency", "efficiency"),
    ("eligable", "eligible"),
    ("embarass", "embarrass"),
    ("enviroment", "environment"),
    ("equiped", "equipped"),
    ("exagerate", "exaggerate"),
    ("exellent", "excellent"),
    ("existance", "existence"),
    ("experiance", "experience"),
    ("explaination", "explanation"),
    ("familar", "familiar"),
    ("feild", "field"),
    ("finaly", "finally"),
    ("foriegn", "foreign"),
    ("fourty", "forty"),
    ("foward", "forward"),
    ("freind", "friend"),
    ("futher", "further"),
    ("gerat", "great"),
    ("goverment", "government"),
    ("gaurd", "guard"),
    ("garantee", "guarantee"),
    ("guidence", "guidance"),
    ("harrass", "harass"),
    ("heigth", "height"),
    ("heirarchy", "hierarchy"),
    ("hieght", "height"),
    ("historicians", "historians"),
    ("humerous", "humorous"),
    ("hygeine", "hygiene"),
    ("identicle", "identical"),
    ("immediatly", "immediately"),
    ("independant", "independent"),
    ("indispensible", "indispensable"),
    ("infomation", "information"),
    ("inteligence", "intelligence"),
    ("intresting", "interesting"),
    ("irrelevent", "irrelevant"),
    ("knowlege", "knowledge"),
    ("labratory", "laboratory"),
    ("lenght", "length"),
    ("liason", "liaison"),
    ("libary", "library"),
    ("lisence", "license"),
    ("maintainance", "maintenance"),
    ("maintenence", "maintenance"),
    ("managment", "management"),
    ("manuever", "maneuver"),
    ("medcine", "medicine"),
    ("milennium", "millennium"),
    ("miniture", "miniature"),
    ("miscelaneous", "miscellaneous"),
    ("mispell", "misspell"),
    ("neccessary", "necessary"),
    ("necesary", "necessary"),
    ("negotation", "negotiation"),
    ("nieghbor", "neighbor"),
    ("noticable", "noticeable"),
    ("occured", "occurred"),
    ("occurence", "occurrence"),
    ("offical", "official"),
    ("oppurtunity", "opportunity"),
    ("orginal", "original"),
    ("paralel", "parallel"),
    ("parliment", "parliament"),
    ("performence", "performance"),
    ("perseverence", "perseverance"),
    ("persistant", "persistent"),
    ("personel", "personnel"),
    ("posession", "possession"),
    ("potatos", "potatoes"),
    ("prefered", "preferred"),
    ("presense", "presence"),
    ("privelege", "privilege"),
    ("probablity", "probability"),
    ("proccess", "process"),
    ("proffesional", "professional"),
    ("promiss", "promise"),
    ("pronounciation", "pronunciation"),
    ("publically", "publicly"),
    ("quantaty", "quantity"),
    ("recieve", "receive"),
    ("recomend", "recommend"),
    ("refered", "referred"),
    ("relevent", "relevant"),
    ("religous", "religious"),
    ("repitition", "repetition"),
    ("resistence", "resistance"),
    ("responce", "response"),
    ("restaraunt", "restaurant"),
    ("rythm", "rhythm"),
    ("scedule", "schedule"),
    ("seige", "siege"),
    ("seperate", "separate"),
    ("sieze", "seize"),
    ("similiar", "similar"),
    ("simpley", "simply"),
    ("sincerly", "sincerely"),
    ("speach", "speech"),
    ("stategy", "strategy"),
    ("succesful", "successful"),
    ("successfull", "successful"),
    ("sucess", "success"),
    ("supercede", "supersede"),
    ("suprise", "surprise"),
    ("temperture", "temperature"),
    ("tommorow", "tomorrow"),
    ("tounge", "tongue"),
    ("transfered", "transferred"),
    ("truely", "truly"),
    ("unforseen", "unforeseen"),
    ("unfortunatly", "unfortunately"),
    ("untill", "until"),
    ("usualy", "usually"),
    ("vaccum", "vacuum"),
    ("vegatarian", "vegetarian"),
    ("vehical", "vehicle"),
    ("verfication", "verification"),
    ("visable", "visible"),
    ("volontary", "voluntary"),
    ("wierd", "weird"),
    ("wich", "which"),
    ("writting", "writing"),
];

/// Looks up known misspelt forms of a (correct) word.
pub fn misspellings_of(word: &str) -> Vec<&'static str> {
    COMMON_MISSPELLINGS
        .iter()
        .filter(|&&(_, c)| c == word)
        .map(|&(m, _)| m)
        .collect()
}

/// Applies one random *cognitive* misspelling rule to `word`, producing a
/// human-like error. Returns `None` when no rule applies (very short or
/// rule-resistant words).
pub fn rule_misspell<R: Rng + ?Sized>(word: &str, rng: &mut R) -> Option<String> {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 4 {
        return None;
    }
    // Collect all applicable rewrites, then pick one at random; this keeps
    // the error distribution diverse instead of biased to the first rule.
    let mut options: Vec<String> = Vec::new();

    // Suffix confusions (often edit distance ≥ 2 from the original).
    const SUFFIX_SWAPS: &[(&str, &str)] = &[
        ("tion", "sion"),
        ("ance", "ence"),
        ("ence", "ance"),
        ("able", "ible"),
        ("ible", "able"),
        ("ally", "aly"),
        ("iously", "ously"),
        ("ieve", "eive"),
    ];
    for &(from, to) in SUFFIX_SWAPS {
        if let Some(stem) = word.strip_suffix(from) {
            options.push(format!("{stem}{to}"));
        }
    }
    // ie ↔ ei confusion anywhere.
    if let Some(i) = word.find("ie") {
        options.push(format!("{}ei{}", &word[..i], &word[i + 2..]));
    }
    if let Some(i) = word.find("ei") {
        options.push(format!("{}ie{}", &word[..i], &word[i + 2..]));
    }
    // Doubled consonant reduced, or single consonant doubled.
    for i in 0..chars.len() - 1 {
        if chars[i] == chars[i + 1] && !is_vowel(chars[i]) {
            let mut c = chars.clone();
            c.remove(i);
            options.push(c.into_iter().collect());
            break;
        }
    }
    for (i, &ch) in chars.iter().enumerate().skip(1) {
        if !is_vowel(ch)
            && i + 1 < chars.len()
            && chars[i - 1] != ch
            && chars[i + 1] != ch
            && is_vowel(chars[i - 1])
        {
            let mut c = chars.clone();
            c.insert(i, ch);
            options.push(c.into_iter().collect());
            break;
        }
    }
    // Unstressed vowel confusion (a/e/i swaps mid-word).
    for (i, &ch) in chars.iter().enumerate().skip(1) {
        if i + 1 < chars.len() && is_vowel(ch) {
            let repl = match ch {
                'a' => 'e',
                'e' => 'a',
                'i' => 'e',
                'o' => 'u',
                'u' => 'o',
                _ => continue,
            };
            let mut c = chars.clone();
            c[i] = repl;
            options.push(c.into_iter().collect());
            break;
        }
    }
    // Adjacent transposition (typing-order error).
    if chars.len() >= 5 {
        let i = 1 + (rng.gen_range(0..chars.len() - 2));
        if chars[i] != chars[i + 1] {
            let mut c = chars.clone();
            c.swap(i, i + 1);
            options.push(c.into_iter().collect());
        }
    }

    options.retain(|o| o != word);
    if options.is_empty() {
        None
    } else {
        let i = rng.gen_range(0..options.len());
        Some(options.swap_remove(i))
    }
}

fn is_vowel(c: char) -> bool {
    matches!(c, 'a' | 'e' | 'i' | 'o' | 'u')
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xclean_fastss::edit_distance;

    #[test]
    fn table_is_well_formed() {
        assert!(COMMON_MISSPELLINGS.len() >= 150);
        for &(m, c) in COMMON_MISSPELLINGS {
            assert_ne!(m, c);
            assert!(m.chars().all(|ch| ch.is_ascii_lowercase()));
            assert!(c.chars().all(|ch| ch.is_ascii_lowercase()));
            // Human misspellings are close but not necessarily 1 edit.
            let d = edit_distance(m, c);
            assert!((1..=4).contains(&d), "{m} vs {c}: distance {d}");
        }
    }

    #[test]
    fn lookup_by_correction() {
        let ms = misspellings_of("committee");
        assert!(ms.contains(&"commitee"));
        assert!(ms.contains(&"comittee"));
        assert!(misspellings_of("nonexistentword").is_empty());
    }

    #[test]
    fn rule_misspell_produces_close_nonidentical_words() {
        let mut rng = StdRng::seed_from_u64(11);
        for w in [
            "architecture",
            "information",
            "performance",
            "believe",
            "parallel",
            "separate",
            "history",
            "probability",
        ] {
            for _ in 0..20 {
                if let Some(m) = rule_misspell(w, &mut rng) {
                    assert_ne!(m, w);
                    let d = edit_distance(&m, w);
                    assert!((1..=3).contains(&d), "{w} → {m}: distance {d}");
                }
            }
        }
    }

    #[test]
    fn rule_misspell_short_words_are_skipped() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rule_misspell("abc", &mut rng), None);
    }

    #[test]
    fn rule_distances_exceed_rand_on_average() {
        // RULE errors should average a larger edit distance than 1 (the
        // RAND default), since suffix confusions cost ≥ 2.
        let mut rng = StdRng::seed_from_u64(5);
        let words = [
            "optimization",
            "classification",
            "appearance",
            "existence",
            "available",
            "noticeable",
            "achievement",
            "information",
        ];
        let mut total = 0usize;
        let mut n = 0usize;
        for w in words {
            for _ in 0..50 {
                if let Some(m) = rule_misspell(w, &mut rng) {
                    total += edit_distance(&m, w);
                    n += 1;
                }
            }
        }
        let avg = total as f64 / n as f64;
        assert!(avg > 1.0, "average distance {avg}");
    }
}
