//! # xclean-datagen
//!
//! Synthetic substitutes for the paper's evaluation resources (§VII-A),
//! since the DBLP May-2009 snapshot, the INEX 2008 Wikipedia collection,
//! and its official topics are not redistributable here. See DESIGN.md §3
//! for the substitution rationale.
//!
//! * [`generate_dblp`] — shallow, data-centric bibliography records with
//!   Zipfian CS vocabulary;
//! * [`generate_inex`] — deep, document-centric encyclopedia articles
//!   with a several-times-larger vocabulary;
//! * [`generate_large_dblp`] — 100k–1M publication corpora over a
//!   morphologically synthesized vocabulary (tens of thousands of terms),
//!   for realistic-scale benchmarking;
//! * [`make_workload`] — entity-coherent CLEAN query sets and their RAND
//!   (random edit) and RULE (common-misspelling) dirty derivatives;
//! * [`misspellings::COMMON_MISSPELLINGS`] — the embedded Wikipedia/Aspell
//!   misspelling table used by RULE and by the search-engine baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dblp;
pub mod inex;
pub mod large;
pub mod misspellings;
pub mod noise;
pub mod words;
pub mod workload;
pub mod zipf;

pub use dblp::{generate_dblp, DblpConfig};
pub use inex::{generate_inex, InexConfig};
pub use large::{generate_large_dblp, synth_vocabulary, LargeDblpConfig};
pub use misspellings::{misspellings_of, rule_misspell, COMMON_MISSPELLINGS};
pub use workload::{make_workload, Perturbation, QueryCase, QuerySet, WorkloadSpec};
pub use zipf::Zipf;
