//! Rare-token noise for the synthetic corpora.
//!
//! Real DBLP/Wikipedia vocabularies carry a long tail of rare tokens that
//! sit edit-close to common words: residual typos (the paper's
//! `verfication` footnote), rare surnames, transliterations, identifiers.
//! This tail is what makes query cleaning *hard* — a dirty keyword has
//! several plausible variants, and a scorer biased toward rare tokens
//! (PY08, §II) gets pulled away from the intended word. The generators
//! inject that tail by occasionally emitting a randomly mutated form of
//! the sampled word.

use rand::Rng;

/// Produces a mutated form of `word`: 1–2 random character edits
/// (insert/delete/substitute of ASCII lowercase letters). The result can
/// coincide with another vocabulary word — exactly as real junk sometimes
/// does.
pub fn mutate_token<R: Rng + ?Sized>(word: &str, rng: &mut R) -> String {
    loop {
        let m = mutate_once(word, rng);
        if m != word {
            return m;
        }
    }
}

fn mutate_once<R: Rng + ?Sized>(word: &str, rng: &mut R) -> String {
    let mut chars: Vec<char> = word.chars().collect();
    let edits = 1 + usize::from(rng.gen_bool(0.3));
    for _ in 0..edits {
        if chars.is_empty() {
            chars.push(random_letter(rng));
            continue;
        }
        match rng.gen_range(0..3u8) {
            0 => {
                let pos = rng.gen_range(0..=chars.len());
                chars.insert(pos, random_letter(rng));
            }
            1 if chars.len() > 3 => {
                let pos = rng.gen_range(0..chars.len());
                chars.remove(pos);
            }
            _ => {
                let pos = rng.gen_range(0..chars.len());
                chars[pos] = random_letter(rng);
            }
        }
    }
    chars.into_iter().collect()
}

fn random_letter<R: Rng + ?Sized>(rng: &mut R) -> char {
    (b'a' + rng.gen_range(0..26)) as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xclean_fastss::edit_distance;

    #[test]
    fn mutations_stay_close() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let m = mutate_token("database", &mut rng);
            let d = edit_distance(&m, "database");
            assert!((1..=2).contains(&d), "database → {m} (d={d})");
        }
    }

    #[test]
    fn short_words_never_shrink_below_three() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let m = mutate_token("icde", &mut rng);
            assert!(m.chars().count() >= 3, "{m}");
        }
    }
}
