//! Query workload construction (§VII-A).
//!
//! Mirrors the paper's three-step procedure: (1) build *clean* initial
//! queries whose keywords co-occur inside one entity (so the ground truth
//! provably has results); (2) derive *dirty* queries via RAND (random edit
//! operations, guaranteed out-of-vocabulary, short tokens spared) or RULE
//! (common human misspellings, larger average distance); (3) keep the
//! clean query as ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xclean_index::CorpusIndex;

use crate::misspellings::{misspellings_of, rule_misspell};

/// How dirty queries are derived from clean ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// No perturbation — the positive control set.
    Clean,
    /// Random edit operations per keyword (the paper's RAND): results are
    /// forced out of the vocabulary and tokens of length ≤ 4 are spared.
    Rand,
    /// Common human misspellings (the paper's RULE): table lookups first,
    /// cognitive rules otherwise; average edit distance exceeds RAND's.
    Rule,
}

impl Perturbation {
    /// Display name matching the paper's query-set naming.
    pub fn label(&self) -> &'static str {
        match self {
            Perturbation::Clean => "CLEAN",
            Perturbation::Rand => "RAND",
            Perturbation::Rule => "RULE",
        }
    }
}

/// One evaluation query.
#[derive(Debug, Clone)]
pub struct QueryCase {
    /// The (possibly dirty) query presented to the system.
    pub dirty: Vec<String>,
    /// The clean query the user intended (the ground truth).
    pub clean: Vec<String>,
}

impl QueryCase {
    /// The dirty query as a string.
    pub fn dirty_string(&self) -> String {
        self.dirty.join(" ")
    }

    /// The ground-truth query as a string.
    pub fn clean_string(&self) -> String {
        self.clean.join(" ")
    }
}

/// A named set of evaluation queries (e.g. `DBLP-RAND`).
#[derive(Debug, Clone)]
pub struct QuerySet {
    /// Set name, e.g. `INEX-RULE`.
    pub name: String,
    /// Which perturbation produced it.
    pub perturbation: Perturbation,
    /// The queries.
    pub cases: Vec<QueryCase>,
}

/// Parameters of workload generation.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of queries to produce.
    pub n_queries: usize,
    /// Minimum keywords per query.
    pub min_len: usize,
    /// Maximum keywords per query.
    pub max_len: usize,
    /// RNG seed.
    pub seed: u64,
    /// Perturbation applied to the clean queries.
    pub perturbation: Perturbation,
    /// Dataset tag used in the set name (e.g. `DBLP`).
    pub dataset: String,
}

impl WorkloadSpec {
    /// The paper's DBLP workload: 49 hand-picked 2–3 keyword queries.
    pub fn dblp(perturbation: Perturbation) -> Self {
        WorkloadSpec {
            n_queries: 49,
            min_len: 2,
            max_len: 3,
            seed: 0xACD_FE11,
            perturbation,
            dataset: "DBLP".to_string(),
        }
    }

    /// The paper's INEX workload: 285 topics with average length 2.5
    /// (1–7 keywords).
    pub fn inex(perturbation: Perturbation) -> Self {
        WorkloadSpec {
            n_queries: 285,
            min_len: 1,
            max_len: 5,
            seed: 0x1e8_2008,
            perturbation,
            dataset: "INEX".to_string(),
        }
    }
}

/// Builds a query set over `corpus` according to `spec`.
///
/// Clean queries are sampled entity-coherently: each query's keywords are
/// distinct tokens from the subtree of one child of the root (a
/// publication record / article), with at least one keyword of length ≥ 5
/// so RAND has something to perturb.
pub fn make_workload(corpus: &CorpusIndex, spec: &WorkloadSpec) -> QuerySet {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let tree = corpus.tree();
    let entities: Vec<_> = tree.children(tree.root()).collect();
    assert!(
        !entities.is_empty(),
        "corpus has no entities under the root"
    );
    let tokenizer = corpus.tokenizer().clone();

    let mut cases = Vec::with_capacity(spec.n_queries);
    let mut attempts = 0usize;
    while cases.len() < spec.n_queries && attempts < spec.n_queries * 200 {
        attempts += 1;
        let entity = entities[rng.gen_range(0..entities.len())];
        // Collect distinct tokens of this entity.
        let mut tokens: Vec<String> = Vec::new();
        for n in tree.subtree(entity) {
            if let Some(t) = tree.text(n) {
                tokenizer.for_each_token(t, |tok| tokens.push(tok.to_string()));
            }
        }
        tokens.sort_unstable();
        tokens.dedup();
        if tokens.is_empty() {
            continue;
        }
        let len = rng.gen_range(spec.min_len..=spec.max_len).min(tokens.len());
        // Sample `len` distinct tokens.
        let mut clean: Vec<String> = Vec::with_capacity(len);
        let mut pool = tokens;
        for _ in 0..len {
            let i = rng.gen_range(0..pool.len());
            clean.push(pool.swap_remove(i));
        }
        if !clean.iter().any(|t| t.chars().count() >= 5) {
            continue; // need at least one perturbable keyword
        }
        let dirty = match spec.perturbation {
            Perturbation::Clean => clean.clone(),
            Perturbation::Rand => clean
                .iter()
                .map(|k| rand_perturb(k, corpus, &mut rng).unwrap_or_else(|| k.clone()))
                .collect(),
            Perturbation::Rule => clean
                .iter()
                .map(|k| rule_perturb(k, corpus, &mut rng).unwrap_or_else(|| k.clone()))
                .collect(),
        };
        // For dirty sets, require that at least one keyword changed.
        if spec.perturbation != Perturbation::Clean && dirty == clean {
            continue;
        }
        cases.push(QueryCase { dirty, clean });
    }
    QuerySet {
        name: format!("{}-{}", spec.dataset, spec.perturbation.label()),
        perturbation: spec.perturbation,
        cases,
    }
}

/// RAND perturbation of one keyword: a single random edit, retried until
/// the result is out of the vocabulary (the paper's rule 1), skipping
/// tokens of length ≤ 4 (rule 2).
pub fn rand_perturb(keyword: &str, corpus: &CorpusIndex, rng: &mut StdRng) -> Option<String> {
    if keyword.chars().count() <= 4 {
        return None;
    }
    for _ in 0..30 {
        let cand = random_edit(keyword, rng);
        if corpus.vocab().get(&cand).is_none() && cand != keyword {
            return Some(cand);
        }
    }
    None
}

/// RULE perturbation: misspelling-table lookup first, cognitive rules
/// otherwise; the result must be out of the vocabulary.
pub fn rule_perturb(keyword: &str, corpus: &CorpusIndex, rng: &mut StdRng) -> Option<String> {
    let known = misspellings_of(keyword);
    if !known.is_empty() {
        let pick = known[rng.gen_range(0..known.len())].to_string();
        if corpus.vocab().get(&pick).is_none() {
            return Some(pick);
        }
    }
    for _ in 0..30 {
        let cand = rule_misspell(keyword, rng)?;
        if corpus.vocab().get(&cand).is_none() && cand != keyword {
            return Some(cand);
        }
    }
    None
}

/// Applies one random insertion, deletion, or substitution of an ASCII
/// letter.
fn random_edit(word: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = word.chars().collect();
    let letter = || (b'a' + rand::random::<u8>() % 26) as char;
    match rng.gen_range(0..3) {
        0 => {
            // insertion
            let pos = rng.gen_range(0..=chars.len());
            let c = (b'a' + rng.gen_range(0..26)) as char;
            chars.insert(pos, c);
        }
        1 => {
            // deletion
            let pos = rng.gen_range(0..chars.len());
            chars.remove(pos);
        }
        _ => {
            // substitution
            let pos = rng.gen_range(0..chars.len());
            let mut c = (b'a' + rng.gen_range(0..26)) as char;
            while c == chars[pos] {
                c = (b'a' + rng.gen_range(0..26)) as char;
            }
            chars[pos] = c;
        }
    }
    let _ = letter;
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dblp::{generate_dblp, DblpConfig};
    use xclean_fastss::edit_distance;

    fn corpus() -> CorpusIndex {
        CorpusIndex::build(generate_dblp(&DblpConfig {
            publications: 500,
            seed: 3,
            ..Default::default()
        }))
    }

    #[test]
    fn clean_workload_has_requested_size_and_coherence() {
        let c = corpus();
        let ws = make_workload(
            &c,
            &WorkloadSpec {
                n_queries: 30,
                min_len: 2,
                max_len: 3,
                seed: 5,
                perturbation: Perturbation::Clean,
                dataset: "DBLP".into(),
            },
        );
        assert_eq!(ws.name, "DBLP-CLEAN");
        assert_eq!(ws.cases.len(), 30);
        for case in &ws.cases {
            assert_eq!(case.dirty, case.clean);
            // All keywords are in the vocabulary (they came from it).
            for k in &case.clean {
                assert!(c.vocab().get(k).is_some(), "{k} not in vocab");
            }
        }
    }

    #[test]
    fn rand_workload_produces_oov_dirty_tokens() {
        let c = corpus();
        let ws = make_workload(
            &c,
            &WorkloadSpec {
                n_queries: 25,
                min_len: 2,
                max_len: 3,
                seed: 11,
                perturbation: Perturbation::Rand,
                dataset: "DBLP".into(),
            },
        );
        assert_eq!(ws.cases.len(), 25);
        for case in &ws.cases {
            assert_ne!(case.dirty, case.clean);
            for (d, cl) in case.dirty.iter().zip(case.clean.iter()) {
                if d != cl {
                    assert!(c.vocab().get(d).is_none(), "dirty token {d} in vocab");
                    assert_eq!(edit_distance(d, cl), 1, "{cl} → {d}");
                    assert!(cl.chars().count() >= 5, "short token {cl} perturbed");
                }
            }
        }
    }

    #[test]
    fn rule_workload_has_larger_distances_on_average() {
        let c = corpus();
        let mk = |p| {
            make_workload(
                &c,
                &WorkloadSpec {
                    n_queries: 40,
                    min_len: 2,
                    max_len: 3,
                    seed: 13,
                    perturbation: p,
                    dataset: "DBLP".into(),
                },
            )
        };
        let rand = mk(Perturbation::Rand);
        let rule = mk(Perturbation::Rule);
        let avg = |ws: &QuerySet| {
            let (mut total, mut n) = (0usize, 0usize);
            for case in &ws.cases {
                for (d, cl) in case.dirty.iter().zip(case.clean.iter()) {
                    if d != cl {
                        total += edit_distance(d, cl);
                        n += 1;
                    }
                }
            }
            total as f64 / n as f64
        };
        assert!(!rule.cases.is_empty());
        assert!(avg(&rule) >= avg(&rand), "{} vs {}", avg(&rule), avg(&rand));
    }

    #[test]
    fn deterministic_given_seed() {
        let c = corpus();
        let spec = WorkloadSpec {
            n_queries: 10,
            min_len: 2,
            max_len: 3,
            seed: 21,
            perturbation: Perturbation::Rand,
            dataset: "DBLP".into(),
        };
        let a = make_workload(&c, &spec);
        let b = make_workload(&c, &spec);
        for (x, y) in a.cases.iter().zip(b.cases.iter()) {
            assert_eq!(x.dirty, y.dirty);
            assert_eq!(x.clean, y.clean);
        }
    }

    #[test]
    fn keywords_come_from_one_entity() {
        // Coherence: every clean query's keywords co-occur in at least one
        // child-of-root subtree.
        let c = corpus();
        let ws = make_workload(
            &c,
            &WorkloadSpec {
                n_queries: 15,
                min_len: 2,
                max_len: 3,
                seed: 2,
                perturbation: Perturbation::Clean,
                dataset: "DBLP".into(),
            },
        );
        let tree = c.tree();
        for case in &ws.cases {
            let found = tree.children(tree.root()).any(|e| {
                case.clean.iter().all(|k| {
                    tree.subtree(e).any(|n| {
                        tree.text(n)
                            .map(|t| c.tokenizer().tokenize(t).iter().any(|x| x == k))
                            .unwrap_or(false)
                    })
                })
            });
            assert!(found, "query {:?} not entity-coherent", case.clean);
        }
    }
}
