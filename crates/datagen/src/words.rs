//! Embedded word corpora for the synthetic datasets.
//!
//! The DBLP substitute draws from computer-science title vocabulary, real
//! author surnames, and venue names; the INEX (Wikipedia) substitute draws
//! from general encyclopedic vocabulary, expanded morphologically so its
//! vocabulary is several times larger than DBLP's — matching the relative
//! sizes the paper reports (§VII-D: "the vocabulary of INEX is also six
//! times as large as that of DBLP").

/// Author surnames (drawn from well-known CS researchers; the DBLP
/// substitute's `<author>` fields combine a given-name initialised form
/// with one of these).
pub const AUTHOR_SURNAMES: &[&str] = &[
    "aggarwal", "abiteboul", "agrawal", "bernstein", "babcock", "bayer",
    "bonnet", "brin", "carey", "chaudhuri", "chen", "chomicki", "codd",
    "dayal", "dewitt", "dean", "dietrich", "dong", "faloutsos", "fagin",
    "fernandez", "franklin", "garcia", "gehrke", "ghemawat", "gray",
    "gupta", "haas", "halevy", "han", "hellerstein", "hull", "ioannidis",
    "jagadish", "jensen", "jones", "kanellakis", "keim", "kemper", "kim",
    "kleinberg", "knuth", "koudas", "kossmann", "kumar", "lamport",
    "lee", "lenzerini", "levy", "libkin", "liu", "lomet", "luo",
    "madden", "maier", "mehrotra", "mendelzon", "miller", "mohan",
    "motwani", "naughton", "navathe", "ooi", "ozsu", "papadias",
    "papadimitriou", "parker", "patel", "pirahesh", "raghavan",
    "ramakrishnan", "reuter", "rose", "ross", "roth", "sagiv", "salton",
    "schek", "schutze", "selinger", "shasha", "silberschatz", "smith",
    "snodgrass", "srivastava", "stonebraker", "suciu", "tan", "tanaka",
    "ullman", "vardi", "vianu", "wang", "weikum", "widom", "wiederhold",
    "wong", "wood", "yang", "yuan", "zaniolo", "zhang", "zhou", "zilio",
    "ailamaki", "balazinska", "barbara", "bertino", "bruno", "buneman",
    "cafarella", "ceri", "chakrabarti", "chang", "cormode", "dasu",
    "deshpande", "doan", "elmagarmid", "ferrari", "florescu", "freire",
    "ganti", "getoor", "gibbons", "goodman", "grust", "guha", "hristidis",
    "ives", "kalashnikov", "kaushik", "kementsietsidis", "kifer", "koch",
    "kornacker", "kraska", "lakshmanan", "lehner", "leung", "manolescu",
    "markl", "mattos", "melnik", "meng", "milo", "muralikrishna", "ngu",
    "olston", "ouzzani", "pandis", "paredaens", "polyzotis", "pottinger",
    "pugh", "rahm", "rastogi", "reinwald", "sarawagi", "sellis", "shanmugasundaram",
    "sismanis", "soffer", "srikant", "tatbul", "theodoridis", "tomasic",
    "valduriez", "vassalos", "velegrakis", "vitter", "wimmers", "xing",
    "xiao", "yianilos", "zaharia", "zdonik", "zhao", "zheng", "zhu",
];

/// Venue / booktitle tokens for the DBLP substitute.
pub const VENUES: &[&str] = &[
    "icde", "icdt", "vldb", "sigmod", "sigir", "kdd", "cikm", "edbt",
    "pods", "www", "wsdm", "sdm", "icml", "nips", "acl", "emnlp",
    "sigkdd", "dasfaa", "ssdbm", "waim", "webdb", "damon", "socc",
    "middleware", "icdcs", "sosp", "osdi", "nsdi", "eurosys", "podc",
    "tods", "tkde", "vldbj", "tois", "jacm", "cacm",
];

/// Content vocabulary for publication titles in the DBLP substitute.
pub const CS_TITLE_WORDS: &[&str] = &[
    "query", "queries", "keyword", "keywords", "search", "searching",
    "database", "databases", "system", "systems", "index", "indexing",
    "indexes", "tree", "trees", "trie", "graph", "graphs", "stream",
    "streams", "streaming", "join", "joins", "aggregation", "aggregate",
    "optimization", "optimizing", "optimizer", "transaction",
    "transactions", "concurrency", "control", "recovery", "logging",
    "storage", "memory", "cache", "caching", "distributed", "parallel",
    "scalable", "scalability", "efficient", "efficiency", "effective",
    "performance", "evaluation", "processing", "semantics", "semantic",
    "structure", "structures", "structured", "semistructured", "relational",
    "object", "oriented", "model", "models", "modeling", "schema",
    "schemas", "mapping", "mappings", "integration", "heterogeneous",
    "federated", "warehouse", "warehousing", "mining", "cleaning",
    "cleansing", "deduplication", "duplicate", "detection", "record",
    "linkage", "entity", "entities", "resolution", "extraction",
    "information", "retrieval", "ranking", "ranked", "scoring", "relevance",
    "probabilistic", "probability", "uncertain", "uncertainty",
    "approximate", "approximation", "similarity", "distance", "metric",
    "spatial", "temporal", "spatiotemporal", "multidimensional",
    "dimensional", "clustering", "clusters", "classification",
    "classifier", "learning", "neural", "network", "networks", "sensor",
    "sensors", "wireless", "mobile", "peer", "cloud", "mapreduce",
    "hadoop", "partitioning", "partition", "sharding", "replication",
    "consistency", "availability", "fault", "tolerance", "tolerant",
    "byzantine", "consensus", "protocol", "protocols", "security",
    "privacy", "anonymity", "encryption", "authentication", "access",
    "views", "view", "materialized", "maintenance", "incremental",
    "algorithm", "algorithms", "algorithmic", "complexity", "bounds",
    "analysis", "theoretical", "practical", "experimental", "benchmark",
    "benchmarking", "workload", "workloads", "adaptive", "dynamic",
    "static", "online", "offline", "realtime", "interactive", "visual",
    "visualization", "interface", "interfaces", "language", "languages",
    "compilation", "compiler", "execution", "plan", "plans", "cost",
    "estimation", "cardinality", "selectivity", "histogram", "histograms",
    "sampling", "sketch", "sketches", "synopsis", "summarization",
    "compression", "compressed", "encoding", "decoding", "bitmap",
    "inverted", "lists", "posting", "postings", "document", "documents",
    "text", "textual", "corpus", "collection", "collections", "xml",
    "xpath", "xquery", "twig", "pattern", "patterns", "matching",
    "automata", "regular", "expressions", "path", "paths", "navigation",
    "labeling", "dewey", "ancestor", "descendant", "subtree", "subtrees",
    "fragment", "fragments", "publish", "subscribe", "dissemination",
    "filtering", "continuous", "window", "windows", "sliding", "top",
    "skyline", "preference", "preferences", "recommendation",
    "recommender", "collaborative", "social", "web", "crawling", "crawler",
    "pagerank", "link", "links", "hyperlink", "wrapper", "wrappers",
    "annotation", "annotations", "ontology", "ontologies", "knowledge",
    "reasoning", "inference", "logic", "datalog", "recursive", "rules",
    "constraint", "constraints", "dependency", "dependencies", "functional",
    "normalization", "decomposition", "provenance", "lineage", "versioning",
    "temporal", "archiving", "snapshot", "bitemporal", "workflow",
    "workflows", "service", "services", "composition", "orchestration",
    "architecture", "architectures", "fpga", "hardware", "multicore",
    "vectorized", "columnar", "column", "row", "hybrid", "engine",
    "engines", "kernel", "buffer", "pool", "latch", "lock", "locking",
    "snapshot", "isolation", "serializable", "serializability",
    "timestamp", "ordering", "validation", "certification", "commit",
    "abort", "checkpoint", "checkpointing", "durability", "crash",
    "media", "failure", "failures", "tagging", "geo", "spelling",
    "suggestion", "suggestions", "correction", "corrections", "error",
    "errors", "noisy", "dirty", "quality", "verification", "program",
    "instance", "insurance", "health", "barrier", "reef",
];

/// General encyclopedic vocabulary (base forms) for the INEX substitute.
pub const GENERAL_WORDS: &[&str] = &[
    "history", "historical", "ancient", "medieval", "modern", "century",
    "empire", "kingdom", "republic", "revolution", "war", "battle",
    "treaty", "dynasty", "civilization", "culture", "cultural", "society",
    "social", "political", "politics", "government", "parliament",
    "election", "democracy", "constitution", "economy", "economic",
    "trade", "industry", "industrial", "agriculture", "agricultural",
    "population", "city", "cities", "town", "village", "capital",
    "province", "region", "regional", "country", "countries", "nation",
    "national", "international", "continent", "europe", "european",
    "asia", "asian", "africa", "african", "america", "american",
    "australia", "australian", "ocean", "oceanic", "pacific", "atlantic",
    "mediterranean", "river", "rivers", "mountain", "mountains", "valley",
    "desert", "forest", "island", "islands", "peninsula", "coast",
    "coastal", "climate", "weather", "temperature", "rainfall", "season",
    "seasons", "geography", "geographic", "geology", "geological",
    "mineral", "minerals", "energy", "petroleum", "coal", "iron",
    "copper", "gold", "silver", "science", "scientific", "scientist",
    "physics", "physical", "chemistry", "chemical", "biology",
    "biological", "mathematics", "mathematical", "astronomy",
    "astronomical", "medicine", "medical", "disease", "diseases",
    "treatment", "hospital", "surgery", "vaccine", "bacteria", "virus",
    "species", "animal", "animals", "plant", "plants", "bird", "birds",
    "fish", "mammal", "mammals", "insect", "insects", "reptile",
    "habitat", "ecosystem", "evolution", "evolutionary", "genetics",
    "genetic", "molecule", "molecular", "atom", "atomic", "nuclear",
    "electron", "proton", "neutron", "quantum", "relativity", "gravity",
    "gravitational", "planet", "planets", "solar", "lunar", "galaxy",
    "universe", "telescope", "satellite", "literature", "literary",
    "novel", "novels", "poetry", "poem", "poet", "author", "writer",
    "philosophy", "philosopher", "philosophical", "religion", "religious",
    "church", "temple", "mosque", "buddhist", "christian", "islamic",
    "jewish", "hindu", "mythology", "legend", "folklore", "music",
    "musical", "musician", "composer", "symphony", "opera", "instrument",
    "painting", "painter", "sculpture", "sculptor", "artist", "artistic",
    "museum", "gallery", "architecture", "architectural", "building",
    "buildings", "bridge", "bridges", "cathedral", "castle", "palace",
    "monument", "theater", "theatre", "cinema", "film", "films",
    "director", "actor", "actress", "television", "radio", "newspaper",
    "journalism", "language", "languages", "linguistic", "grammar",
    "vocabulary", "dialect", "alphabet", "writing", "education",
    "educational", "university", "universities", "college", "school",
    "student", "students", "professor", "research", "sport", "sports",
    "football", "cricket", "tennis", "olympic", "olympics", "athlete",
    "champion", "championship", "tournament", "stadium", "team", "teams",
    "player", "players", "season", "league", "transport",
    "transportation", "railway", "railways", "highway", "airport",
    "aviation", "aircraft", "airplane", "ship", "ships", "navigation",
    "automobile", "engine", "engineering", "engineer", "technology",
    "technological", "computer", "computers", "software", "hardware",
    "internet", "digital", "electronic", "electronics", "telephone",
    "communication", "communications", "military", "army", "navy",
    "soldier", "soldiers", "weapon", "weapons", "fortress", "invasion",
    "conquest", "colonial", "colony", "colonies", "independence",
    "liberation", "migration", "immigrant", "settlement", "settlers",
    "explorer", "exploration", "discovery", "expedition", "voyage",
    "skyscraper", "skyscrapers", "famous", "places", "great", "barrier",
    "reef", "coral", "heritage", "tourism", "tourist", "festival",
    "tradition", "traditional", "cuisine", "agriculture", "currency",
    "finance", "financial", "bank", "banking", "market", "markets",
    "company", "companies", "corporation", "business", "labor", "union",
    "president", "minister", "emperor", "queen", "king", "prince",
    "duke", "governor", "mayor", "senator", "judge", "court", "justice",
    "law", "laws", "legal", "crime", "criminal", "police", "prison",
];

/// Suffixes used to expand the INEX vocabulary morphologically. Applying
/// these to [`GENERAL_WORDS`] multiplies the distinct-token count roughly
/// 6×, matching the paper's reported vocabulary ratio between INEX and
/// DBLP.
pub const EXPANSION_SUFFIXES: &[&str] = &["s", "ed", "ing", "ly", "ness"];

/// Expands a base vocabulary with suffixed forms. Duplicates are removed;
/// order is deterministic (base words first, then per-suffix blocks).
pub fn expand_vocabulary(base: &[&str], suffixes: &[&str]) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(base.len() * (1 + suffixes.len()));
    let mut seen = std::collections::HashSet::new();
    for &w in base {
        if seen.insert(w.to_string()) {
            out.push(w.to_string());
        }
    }
    for &suf in suffixes {
        for &w in base {
            let form = format!("{w}{suf}");
            if seen.insert(form.clone()) {
                out.push(form);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_have_reasonable_sizes() {
        assert!(AUTHOR_SURNAMES.len() >= 150, "{}", AUTHOR_SURNAMES.len());
        assert!(VENUES.len() >= 30);
        assert!(CS_TITLE_WORDS.len() >= 250, "{}", CS_TITLE_WORDS.len());
        assert!(GENERAL_WORDS.len() >= 300, "{}", GENERAL_WORDS.len());
    }

    #[test]
    fn all_tokens_are_indexable() {
        // lowercase, ≥3 chars, no whitespace — so they survive the
        // corpus tokenizer unchanged.
        for list in [AUTHOR_SURNAMES, VENUES, CS_TITLE_WORDS, GENERAL_WORDS] {
            for &w in list {
                assert!(w.len() >= 3, "{w} too short");
                assert!(
                    w.chars().all(|c| c.is_ascii_lowercase()),
                    "{w} not lowercase-ascii"
                );
            }
        }
    }

    #[test]
    fn expansion_multiplies_vocabulary() {
        let expanded = expand_vocabulary(GENERAL_WORDS, EXPANSION_SUFFIXES);
        assert!(expanded.len() >= GENERAL_WORDS.len() * 4);
        // no duplicates
        let set: std::collections::HashSet<_> = expanded.iter().collect();
        assert_eq!(set.len(), expanded.len());
    }

    #[test]
    fn surnames_have_no_duplicates() {
        let set: std::collections::HashSet<_> = AUTHOR_SURNAMES.iter().collect();
        assert_eq!(set.len(), AUTHOR_SURNAMES.len());
    }
}
