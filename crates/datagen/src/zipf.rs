//! Zipf-distributed sampling.
//!
//! Natural-language term frequencies follow Zipf's law; both synthetic
//! corpora draw their content words through this sampler so posting-list
//! length distributions (and hence skipping behaviour, LM statistics, and
//! PY08's idf bias) resemble the real datasets'.

use rand::Rng;

/// Inverse-CDF sampler over ranks `0..n` with probability `∝ 1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s` (s = 1 is the
    /// classic Zipf distribution).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the sampler is over zero ranks (never constructible).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99] * 5);
        // Roughly harmonic: rank 0 ≈ 2× rank 1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!(ratio > 1.5 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn exponent_zero_is_uniformish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 1500 && c < 2500, "{counts:?}");
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
