//! Realistic-scale synthetic DBLP for benchmarking (100k–1M publications).
//!
//! The hand-curated word lists in [`crate::words`] top out at ~900 terms,
//! which keeps the quick-bench corpora tiny (691 distinct indexed terms at
//! dblp-800) — far too small for hot-path wins or regressions to register
//! (BENCH_pr4 measured rank p50 at 255 ns). This module scales the
//! vocabulary morphologically — deterministic prefix/suffix composition
//! over the curated lists — to tens of thousands of distinct terms, and
//! generates publication records whose term choice follows the same Zipf
//! law as [`crate::dblp`]. Rare-token noise reuses the cognitive
//! misspelling rules of [`crate::misspellings`], so the error shapes the
//! cleaning engine sees match the small corpora.
//!
//! Everything is deterministic given the config: same seed, same tree,
//! byte for byte — the property the bit-identity suites and the CI corpus
//! cache both rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xclean_xmltree::{TreeBuilder, XmlTree};

use crate::words::{AUTHOR_SURNAMES, CS_TITLE_WORDS, EXPANSION_SUFFIXES, GENERAL_WORDS, VENUES};
use crate::zipf::Zipf;

/// Compound prefixes applied to the curated base words. Combined with
/// [`EXPANSION_SUFFIXES`] this multiplies the distinct-term count by up to
/// ~180× (30 prefixes × 6 suffix forms), enough to synthesize a 100k-term
/// vocabulary from the ~650 curated bases.
const COMPOUND_PREFIXES: &[&str] = &[
    "meta", "multi", "hyper", "auto", "micro", "macro", "inter", "intra", "pseudo", "semi",
    "ultra", "proto", "cross", "over", "under", "super", "sub", "non", "pre", "post", "anti",
    "contra", "retro", "quasi", "poly", "mono", "iso", "neo", "omni", "tele",
];

/// Parameters of the large-scale DBLP substitute.
#[derive(Debug, Clone)]
pub struct LargeDblpConfig {
    /// Number of publication records (100k–1M intended).
    pub publications: usize,
    /// Target number of distinct title terms in the synthetic vocabulary.
    pub vocab_terms: usize,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
    /// Zipf exponent for title-term selection.
    pub zipf_exponent: f64,
    /// Probability that a title token is emitted as a human-like
    /// misspelling (rule-generated, cf. [`crate::misspellings`]).
    pub noise_rate: f64,
}

impl Default for LargeDblpConfig {
    fn default() -> Self {
        LargeDblpConfig {
            publications: 100_000,
            vocab_terms: 30_000,
            seed: 0x1a6e_2011,
            zipf_exponent: 1.05,
            noise_rate: 0.01,
        }
    }
}

/// Builds a deterministic synthetic vocabulary of (up to) `terms` distinct
/// lowercase words: the curated bases first, then prefix compounds, then
/// suffixed compound forms — so a truncated vocabulary is always a prefix
/// of a larger one, and term ranks are stable across sizes.
pub fn synth_vocabulary(terms: usize) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(terms);
    let mut seen = std::collections::HashSet::new();
    let push = |out: &mut Vec<String>, seen: &mut std::collections::HashSet<String>, w: String| {
        if seen.insert(w.clone()) {
            out.push(w);
        }
    };
    let bases: Vec<&str> = CS_TITLE_WORDS
        .iter()
        .chain(GENERAL_WORDS.iter())
        .copied()
        .collect();
    for &w in &bases {
        if out.len() >= terms {
            return out;
        }
        push(&mut out, &mut seen, w.to_string());
    }
    for &prefix in COMPOUND_PREFIXES {
        for &w in &bases {
            if out.len() >= terms {
                return out;
            }
            push(&mut out, &mut seen, format!("{prefix}{w}"));
        }
    }
    for &suffix in EXPANSION_SUFFIXES {
        for &prefix in COMPOUND_PREFIXES {
            for &w in &bases {
                if out.len() >= terms {
                    return out;
                }
                push(&mut out, &mut seen, format!("{prefix}{w}{suffix}"));
            }
        }
    }
    out
}

/// Generates the large bibliography tree.
pub fn generate_large_dblp(config: &LargeDblpConfig) -> XmlTree {
    let vocab = synth_vocabulary(config.vocab_terms);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let title_zipf = Zipf::new(vocab.len(), config.zipf_exponent);
    let author_zipf = Zipf::new(AUTHOR_SURNAMES.len(), config.zipf_exponent * 0.7);
    let venue_zipf = Zipf::new(VENUES.len(), config.zipf_exponent * 0.5);

    let mut b = TreeBuilder::new("dblp");
    let mut title = String::new();
    for _ in 0..config.publications {
        let kind = if rng.gen_bool(0.45) {
            "article"
        } else {
            "inproceedings"
        };
        b.open(kind);
        let n_authors = 1 + rng.gen_range(0..3);
        for _ in 0..n_authors {
            let initial = (b'a' + rng.gen_range(0..26)) as char;
            let surname = AUTHOR_SURNAMES[author_zipf.sample(&mut rng)];
            b.leaf("author", &format!("{initial} {surname}"));
        }
        let n_words = 4 + rng.gen_range(0..7);
        title.clear();
        for w in 0..n_words {
            if w > 0 {
                title.push(' ');
            }
            let word = vocab[title_zipf.sample(&mut rng)].as_str();
            if rng.gen_bool(config.noise_rate) {
                // A human-like misspelling of the sampled word, falling
                // back to a random single edit for words the rules skip.
                match crate::misspellings::rule_misspell(word, &mut rng) {
                    Some(bad) => title.push_str(&bad),
                    None => title.push_str(&crate::noise::mutate_token(word, &mut rng)),
                }
            } else {
                title.push_str(word);
            }
        }
        b.leaf("title", &title);
        b.leaf("year", &format!("{}", 1990 + rng.gen_range(0..30)));
        let venue = VENUES[venue_zipf.sample(&mut rng)];
        if kind == "article" {
            b.leaf("journal", venue);
        } else {
            b.leaf("booktitle", venue);
        }
        b.close();
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xclean_xmltree::TreeStats;

    fn small() -> LargeDblpConfig {
        LargeDblpConfig {
            publications: 1_000,
            vocab_terms: 8_000,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn vocabulary_reaches_target_and_is_indexable() {
        let v = synth_vocabulary(30_000);
        assert_eq!(v.len(), 30_000);
        let distinct: std::collections::HashSet<&String> = v.iter().collect();
        assert_eq!(distinct.len(), v.len(), "duplicates in vocabulary");
        for w in &v {
            assert!(w.len() >= 3, "{w} too short for the tokenizer");
            assert!(
                w.chars().all(|c| c.is_ascii_lowercase()),
                "{w} not lowercase ascii"
            );
        }
    }

    #[test]
    fn vocabulary_sizes_nest() {
        // A smaller vocabulary is a prefix of a larger one, so term ranks
        // (and hence Zipf frequencies) are stable across scales.
        let small = synth_vocabulary(5_000);
        let big = synth_vocabulary(20_000);
        assert_eq!(&big[..5_000], &small[..]);
    }

    #[test]
    fn shape_matches_dblp() {
        let t = generate_large_dblp(&small());
        assert_eq!(t.label_name(t.root()), "dblp");
        assert_eq!(t.children(t.root()).count(), 1_000);
        let s = TreeStats::compute(&t);
        assert_eq!(s.max_depth, 3);
        assert!(s.distinct_paths <= 14, "{}", s.distinct_paths);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_large_dblp(&small());
        let b = generate_large_dblp(&small());
        assert_eq!(xclean_xmltree::to_xml(&a), xclean_xmltree::to_xml(&b));
        let c = generate_large_dblp(&LargeDblpConfig { seed: 8, ..small() });
        assert_ne!(xclean_xmltree::to_xml(&a), xclean_xmltree::to_xml(&c));
    }

    #[test]
    fn vocabulary_scales_past_the_curated_lists() {
        let t = generate_large_dblp(&small());
        let c = xclean_index::CorpusIndex::build(t);
        // The 691-term ceiling of the curated corpus is far exceeded even
        // at 1k publications (Zipf sampling realizes the vocabulary tail
        // only as the corpus grows, so this rises further at 100k).
        assert!(
            c.vocab().len() > 2_000,
            "only {} distinct terms indexed",
            c.vocab().len()
        );
        // And term frequencies stay Zipf-skewed.
        let mut cfs: Vec<u64> = (0..c.vocab().len() as u32)
            .map(|i| c.vocab().cf(xclean_index::TokenId(i)))
            .collect();
        cfs.sort_unstable_by(|a, b| b.cmp(a));
        assert!(cfs[0] > cfs[cfs.len() / 2] * 10);
    }
}
