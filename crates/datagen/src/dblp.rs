//! Synthetic DBLP-like bibliography generator.
//!
//! Substitute for the May-2009 DBLP snapshot used in the paper (§VII-A):
//! a shallow, record-structured, data-centric tree
//! (`dblp/{article,inproceedings}/{author,title,year,booktitle,pages}`)
//! whose title vocabulary follows a Zipf distribution over real
//! computer-science terms and whose author fields use real researcher
//! surnames. This preserves the properties the experiments depend on:
//! few distinct label paths, shallow depth (≤ 4 vs the paper's 7),
//! skewed token frequencies, and entity-sized virtual documents.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xclean_xmltree::{TreeBuilder, XmlTree};

use crate::words::{AUTHOR_SURNAMES, CS_TITLE_WORDS, VENUES};
use crate::zipf::Zipf;

/// Parameters of the DBLP substitute.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of publication records.
    pub publications: usize,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
    /// Zipf exponent for title-term selection.
    pub zipf_exponent: f64,
    /// Probability that a generated token is emitted as a rare mutated
    /// form instead (models the rare names, abbreviations and residual
    /// data errors of the real DBLP — cf. the paper's footnote on
    /// `verfication` appearing in real titles). These rare tokens are the
    /// natural prey of PY08's rare-token bias.
    pub noise_rate: f64,
    /// Rotates every vocabulary table by this many entries before Zipf
    /// sampling, so a multi-corpus catalog (DESIGN.md §16) can hold
    /// several DBLP-flavoured corpora whose *hot* terms differ — a
    /// different seed alone reshuffles draws but keeps the same head of
    /// the Zipf distribution, which makes cross-tenant cache-isolation
    /// checks vacuous. `0` (the default) reproduces the historical
    /// output byte-for-byte.
    pub vocab_rotation: usize,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            publications: 20_000,
            seed: 0x0db1_2009,
            zipf_exponent: 1.0,
            noise_rate: 0.02,
            vocab_rotation: 0,
        }
    }
}

/// Generates the bibliography tree.
pub fn generate_dblp(config: &DblpConfig) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let title_zipf = Zipf::new(CS_TITLE_WORDS.len(), config.zipf_exponent);
    let author_zipf = Zipf::new(AUTHOR_SURNAMES.len(), config.zipf_exponent * 0.7);
    let venue_zipf = Zipf::new(VENUES.len(), config.zipf_exponent * 0.5);
    let rot = |idx: usize, len: usize| (idx + config.vocab_rotation) % len;

    let mut b = TreeBuilder::new("dblp");
    for _ in 0..config.publications {
        let kind = if rng.gen_bool(0.45) {
            "article"
        } else {
            "inproceedings"
        };
        b.open(kind);
        let n_authors = 1 + rng.gen_range(0..4);
        for _ in 0..n_authors {
            let initial = (b'a' + rng.gen_range(0..26)) as char;
            let surname = AUTHOR_SURNAMES[rot(author_zipf.sample(&mut rng), AUTHOR_SURNAMES.len())];
            if rng.gen_bool(config.noise_rate) {
                // Rare surname: a mutated form of a common one.
                let rare = crate::noise::mutate_token(surname, &mut rng);
                b.leaf("author", &format!("{initial} {rare}"));
            } else {
                b.leaf("author", &format!("{initial} {surname}"));
            }
        }
        let n_words = 4 + rng.gen_range(0..7);
        let mut title = String::new();
        for w in 0..n_words {
            if w > 0 {
                title.push(' ');
            }
            let word = CS_TITLE_WORDS[rot(title_zipf.sample(&mut rng), CS_TITLE_WORDS.len())];
            if rng.gen_bool(config.noise_rate) {
                title.push_str(&crate::noise::mutate_token(word, &mut rng));
            } else {
                title.push_str(word);
            }
        }
        b.leaf("title", &title);
        b.leaf("year", &format!("{}", 1990 + rng.gen_range(0..20)));
        let venue = VENUES[rot(venue_zipf.sample(&mut rng), VENUES.len())];
        if kind == "article" {
            b.leaf("journal", venue);
        } else {
            b.leaf("booktitle", venue);
        }
        let start = rng.gen_range(1..800);
        b.leaf(
            "pages",
            &format!("{start}-{}", start + rng.gen_range(5..20)),
        );
        b.close();
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xclean_xmltree::TreeStats;

    fn small() -> DblpConfig {
        DblpConfig {
            publications: 200,
            seed: 42,
            ..Default::default()
        }
    }

    #[test]
    fn shape_matches_dblp() {
        let t = generate_dblp(&small());
        assert_eq!(t.label_name(t.root()), "dblp");
        assert_eq!(t.children(t.root()).count(), 200);
        let s = TreeStats::compute(&t);
        assert_eq!(s.max_depth, 3);
        // Few distinct paths: dblp, 2 pub kinds, and their fields.
        assert!(s.distinct_paths <= 14, "{}", s.distinct_paths);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_dblp(&small());
        let b = generate_dblp(&small());
        assert_eq!(xclean_xmltree::to_xml(&a), xclean_xmltree::to_xml(&b));
        let c = generate_dblp(&DblpConfig {
            seed: 43,
            ..small()
        });
        assert_ne!(xclean_xmltree::to_xml(&a), xclean_xmltree::to_xml(&c));
    }

    #[test]
    fn vocab_rotation_shifts_content_but_zero_is_the_identity() {
        let base = generate_dblp(&small());
        let zero = generate_dblp(&DblpConfig {
            vocab_rotation: 0,
            ..small()
        });
        // The default must stay byte-stable: corpus caches and bench
        // baselines key on the historical bytes.
        assert_eq!(xclean_xmltree::to_xml(&base), xclean_xmltree::to_xml(&zero));
        let rotated = generate_dblp(&DblpConfig {
            vocab_rotation: 97,
            ..small()
        });
        let (a, b) = (
            xclean_xmltree::to_xml(&base),
            xclean_xmltree::to_xml(&rotated),
        );
        assert_ne!(a, b);
        // Still the same record count — rotation moves vocabulary, not
        // the corpus size.
        assert_eq!(rotated.children(rotated.root()).count(), 200);
    }

    #[test]
    fn every_record_has_title_and_author() {
        let t = generate_dblp(&small());
        for rec in t.children(t.root()) {
            let labels: Vec<&str> = t.children(rec).map(|c| t.label_name(c)).collect();
            assert!(labels.contains(&"title"));
            assert!(labels.contains(&"author"));
            assert!(labels.contains(&"year"));
        }
    }

    #[test]
    fn token_frequencies_are_skewed() {
        let t = generate_dblp(&DblpConfig {
            publications: 2000,
            ..small()
        });
        let c = xclean_index::CorpusIndex::build(t);
        let mut cfs: Vec<u64> = (0..c.vocab().len() as u32)
            .map(|i| c.vocab().cf(xclean_index::TokenId(i)))
            .collect();
        cfs.sort_unstable_by(|a, b| b.cmp(a));
        // Zipfy: the most common term is much more frequent than median.
        assert!(cfs[0] > cfs[cfs.len() / 2] * 10);
    }
}
