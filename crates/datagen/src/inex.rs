//! Synthetic INEX/Wikipedia-like collection generator.
//!
//! Substitute for the INEX 2008 Wikipedia collection (§VII-A): a
//! document-centric tree of `article`s with nested `section`s of variable
//! (occasionally extreme) depth, long mixed-content paragraphs, and a
//! vocabulary several times larger than the DBLP substitute's (achieved by
//! morphological expansion). This reproduces the regime that made INEX
//! behave differently in the paper's experiments: deep irregular paths,
//! long virtual documents, larger posting lists and variant sets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xclean_xmltree::{TreeBuilder, XmlTree};

use crate::words::{expand_vocabulary, EXPANSION_SUFFIXES, GENERAL_WORDS};
use crate::zipf::Zipf;

/// Parameters of the INEX substitute.
#[derive(Debug, Clone)]
pub struct InexConfig {
    /// Number of articles in the collection.
    pub articles: usize,
    /// RNG seed.
    pub seed: u64,
    /// Zipf exponent for body-term selection.
    pub zipf_exponent: f64,
    /// Maximum nesting depth of sections (articles occasionally approach
    /// it, mimicking INEX's max depth of 50 vs average 5.58).
    pub max_section_depth: u32,
    /// Probability of emitting a rare mutated token instead of the
    /// sampled one. Wikipedia full text is dirty (typos, foreign terms,
    /// identifiers); this models that long rare-token tail.
    pub noise_rate: f64,
}

impl Default for InexConfig {
    fn default() -> Self {
        InexConfig {
            articles: 3_000,
            seed: 0x1e82_2008,
            zipf_exponent: 1.05,
            max_section_depth: 16,
            noise_rate: 0.03,
        }
    }
}

/// Generates the encyclopedia tree under a virtual `collection` root.
pub fn generate_inex(config: &InexConfig) -> XmlTree {
    let vocab = expand_vocabulary(GENERAL_WORDS, EXPANSION_SUFFIXES);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(vocab.len(), config.zipf_exponent);

    let mut b = TreeBuilder::new("collection");
    for _ in 0..config.articles {
        b.open("article");
        b.leaf("name", &sentence(&vocab, &zipf, &mut rng, 2, 4));

        b.open("body");
        let sections = 1 + rng.gen_range(0..4);
        for _ in 0..sections {
            gen_section(
                &mut b,
                &vocab,
                &zipf,
                &mut rng,
                1,
                config.max_section_depth,
                config.noise_rate,
            );
        }
        b.close(); // body
        b.open("categories");
        for _ in 0..1 + rng.gen_range(0..3) {
            b.leaf("category", &sentence(&vocab, &zipf, &mut rng, 1, 2));
        }
        b.close();
        b.close(); // article
    }
    b.finish()
}

#[allow(clippy::too_many_arguments)]
fn gen_section(
    b: &mut TreeBuilder,
    vocab: &[String],
    zipf: &Zipf,
    rng: &mut StdRng,
    depth: u32,
    max_depth: u32,
    noise_rate: f64,
) {
    b.open("section");
    b.leaf("title", &sentence_noisy(vocab, zipf, rng, 1, 4, noise_rate));
    let paragraphs = 1 + rng.gen_range(0..4);
    for _ in 0..paragraphs {
        b.leaf("p", &sentence_noisy(vocab, zipf, rng, 15, 60, noise_rate));
    }
    // Recurse with decreasing probability; a small fraction of articles
    // produces very deep chains (document-centric irregularity).
    if depth < max_depth {
        let p_child = if depth < 3 {
            0.35
        } else {
            0.55_f64.powi(depth as i32 - 2) * 0.5
        };
        let mut children = 0;
        while children < 2 && rng.gen_bool(p_child.clamp(0.0, 0.95)) {
            gen_section(b, vocab, zipf, rng, depth + 1, max_depth, noise_rate);
            children += 1;
        }
    }
    b.close();
}

fn sentence(vocab: &[String], zipf: &Zipf, rng: &mut StdRng, min: usize, max: usize) -> String {
    sentence_noisy(vocab, zipf, rng, min, max, 0.0)
}

fn sentence_noisy(
    vocab: &[String],
    zipf: &Zipf,
    rng: &mut StdRng,
    min: usize,
    max: usize,
    noise_rate: f64,
) -> String {
    let n = min + rng.gen_range(0..=(max - min));
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        let word = &vocab[zipf.sample(rng)];
        if noise_rate > 0.0 && rng.gen_bool(noise_rate) {
            s.push_str(&crate::noise::mutate_token(word, rng));
        } else {
            s.push_str(word);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use xclean_xmltree::TreeStats;

    fn small() -> InexConfig {
        InexConfig {
            articles: 100,
            seed: 7,
            zipf_exponent: 1.05,
            max_section_depth: 12,
            noise_rate: 0.03,
        }
    }

    #[test]
    fn document_centric_shape() {
        let t = generate_inex(&small());
        assert_eq!(t.label_name(t.root()), "collection");
        assert_eq!(t.children(t.root()).count(), 100);
        let s = TreeStats::compute(&t);
        // Much deeper and more path-diverse than the DBLP substitute.
        assert!(s.max_depth >= 6, "max depth {}", s.max_depth);
        assert!(s.distinct_paths > 14, "{} paths", s.distinct_paths);
        assert!(s.avg_depth > 3.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_inex(&small());
        let b = generate_inex(&small());
        assert_eq!(xclean_xmltree::to_xml(&a), xclean_xmltree::to_xml(&b));
    }

    #[test]
    fn vocabulary_is_larger_than_dblp() {
        use crate::dblp::{generate_dblp, DblpConfig};
        let inex = xclean_index::CorpusIndex::build(generate_inex(&InexConfig {
            articles: 400,
            ..small()
        }));
        let dblp = xclean_index::CorpusIndex::build(generate_dblp(&DblpConfig {
            publications: 2000,
            seed: 1,
            ..Default::default()
        }));
        assert!(
            inex.vocab().len() > dblp.vocab().len() * 2,
            "inex {} vs dblp {}",
            inex.vocab().len(),
            dblp.vocab().len()
        );
    }

    #[test]
    fn sections_nest() {
        let t = generate_inex(&InexConfig {
            articles: 200,
            seed: 9,
            zipf_exponent: 1.0,
            max_section_depth: 10,
            noise_rate: 0.0,
        });
        // At least one section within a section somewhere.
        let mut nested = false;
        for n in t.iter() {
            if t.label_name(n) == "section" {
                if let Some(p) = t.parent(n) {
                    if t.label_name(p) == "section" {
                        nested = true;
                        break;
                    }
                }
            }
        }
        assert!(nested, "expected nested sections");
    }
}
