//! The systems under evaluation, behind one suggestion interface.
//!
//! §VII-B compares XClean against the adapted PY08 baseline and two
//! commercial search engines (simulated here by a query-log corrector;
//! see `xclean_baselines::selog`). All are wrapped in [`Suggester`] so the
//! harness can treat them uniformly.

use xclean::{KeywordSlot, Semantics, XCleanConfig, XCleanEngine};
use xclean_baselines::{Py08, SearchEngineCorrector};
use xclean_index::CorpusIndex;

/// A system that maps a keyword query to ranked alternative queries.
pub trait Suggester {
    /// System name used in result tables.
    fn name(&self) -> &str;

    /// Ranked suggestions (term sequences), best first.
    fn suggest(&self, keywords: &[String]) -> Vec<Vec<String>>;
}

/// XClean with either semantics.
pub struct XCleanSuggester<'a> {
    engine: &'a XCleanEngine,
    label: String,
}

impl<'a> XCleanSuggester<'a> {
    /// Wraps an engine; the label reflects its semantics.
    pub fn new(engine: &'a XCleanEngine) -> Self {
        let label = match engine.semantics() {
            Semantics::NodeType => "XClean".to_string(),
            Semantics::Slca => "XClean-SLCA".to_string(),
            Semantics::Elca => "XClean-ELCA".to_string(),
        };
        XCleanSuggester { engine, label }
    }
}

impl Suggester for XCleanSuggester<'_> {
    fn name(&self) -> &str {
        &self.label
    }

    fn suggest(&self, keywords: &[String]) -> Vec<Vec<String>> {
        self.engine
            .suggest_keywords(keywords)
            .suggestions
            .into_iter()
            .map(|s| s.terms)
            .collect()
    }
}

/// PY08 baseline wrapper (owns the variant generation path the paper
/// grants it too).
pub struct Py08Suggester<'a> {
    py08: Py08,
    engine: &'a XCleanEngine,
    k: usize,
}

impl<'a> Py08Suggester<'a> {
    /// Builds PY08 over the same corpus/variant machinery as the engine.
    pub fn new(engine: &'a XCleanEngine, corpus: &CorpusIndex, gamma: usize) -> Self {
        let cfg: &XCleanConfig = engine.config();
        Py08Suggester {
            py08: Py08::build(corpus, cfg.beta, gamma),
            engine,
            k: cfg.k,
        }
    }
}

impl Suggester for Py08Suggester<'_> {
    fn name(&self) -> &str {
        "PY08"
    }

    fn suggest(&self, keywords: &[String]) -> Vec<Vec<String>> {
        let slots: Vec<KeywordSlot> = self.engine.make_slots(keywords);
        let corpus = self.engine.corpus();
        self.py08
            .suggest(corpus, &slots, self.k)
            .into_iter()
            .map(|c| {
                c.tokens
                    .iter()
                    .map(|&t| corpus.vocab().term(t).to_string())
                    .collect()
            })
            .collect()
    }
}

/// Simulated search engine. Returns at most one suggestion; when it stays
/// silent the input query itself is reported (rank-1 identity), matching
/// how the paper scores the engines on CLEAN sets.
pub struct SeSuggester {
    corrector: SearchEngineCorrector,
    label: String,
}

impl SeSuggester {
    /// Wraps a log-based corrector under a display name (`SE1`, `SE2`).
    pub fn new(corrector: SearchEngineCorrector, label: &str) -> Self {
        SeSuggester {
            corrector,
            label: label.to_string(),
        }
    }
}

impl Suggester for SeSuggester {
    fn name(&self) -> &str {
        &self.label
    }

    fn suggest(&self, keywords: &[String]) -> Vec<Vec<String>> {
        match self.corrector.suggest(keywords) {
            Some(fix) => vec![fix],
            None => vec![keywords.to_vec()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xclean_baselines::SeConfig;
    use xclean_xmltree::parse_document;

    fn engine() -> XCleanEngine {
        let xml = "<db>\
            <rec><t>health insurance</t></rec>\
            <rec><t>program instance</t></rec>\
        </db>";
        XCleanEngine::new(parse_document(xml).unwrap(), XCleanConfig::default())
    }

    fn kw(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn xclean_suggester_roundtrip() {
        let e = engine();
        let s = XCleanSuggester::new(&e);
        assert_eq!(s.name(), "XClean");
        let out = s.suggest(&kw(&["helth", "insurance"]));
        assert_eq!(out[0], kw(&["health", "insurance"]));
    }

    #[test]
    fn py08_suggester_runs() {
        let e = engine();
        let s = Py08Suggester::new(&e, e.corpus(), 100);
        assert_eq!(s.name(), "PY08");
        let out = s.suggest(&kw(&["helth", "insurance"]));
        assert!(!out.is_empty());
    }

    #[test]
    fn se_suggester_identity_on_silence() {
        let corr = SearchEngineCorrector::build(
            [("health insurance", 10)],
            std::iter::empty(),
            SeConfig::default(),
        );
        let s = SeSuggester::new(corr, "SE1");
        let clean = kw(&["health", "insurance"]);
        assert_eq!(s.suggest(&clean), vec![clean.clone()]);
        let out = s.suggest(&kw(&["helth", "insurance"]));
        assert_eq!(out, vec![clean]);
    }
}
