//! Experiment E6 — Table IV: MRR vs the error penalty β.
//!
//! Sweeps β ∈ {0, 1, 2, 5, 8, 10} with γ = 1000. Expected shape: MRR
//! climbs steeply from β = 0, plateaus around β = 5, with occasional minor
//! decreases beyond (the paper's explanation: small β is too lenient to
//! distant-but-frequent variants).

use serde::Serialize;
use xclean::XCleanConfig;
use xclean_eval::datasets::{build_dblp, build_inex, default_config, query_sets, scale};
use xclean_eval::metrics::MetricAccumulator;
use xclean_eval::report::{f2, render_table, write_json};

const BETAS: &[f64] = &[0.0, 1.0, 2.0, 5.0, 8.0, 10.0];

#[derive(Serialize)]
struct Row {
    query_set: String,
    betas: Vec<f64>,
    mrr: Vec<f64>,
}

fn main() {
    let scale = scale();
    println!("== E6 / Table IV: MRR vs β (γ=1000, scale {scale}) ==\n");
    let mut rows: Vec<Row> = Vec::new();
    for (dataset, engine) in [
        ("DBLP", build_dblp(scale, default_config())),
        ("INEX", build_inex(scale, default_config())),
    ] {
        for set in query_sets(&engine, dataset) {
            xclean_telemetry::log_info!("xclean_eval", "sweeping beta", dataset = set.name);
            let mut mrrs = Vec::new();
            for &beta in BETAS {
                let cfg = XCleanConfig {
                    beta,
                    ..default_config()
                };
                let mut acc = MetricAccumulator::new(10);
                for case in &set.cases {
                    let resp = engine.suggest_keywords_with(&case.dirty, &cfg);
                    let suggestions: Vec<Vec<String>> =
                        resp.suggestions.into_iter().map(|s| s.terms).collect();
                    acc.record(&suggestions, &case.clean);
                }
                mrrs.push(acc.finish().mrr);
            }
            rows.push(Row {
                query_set: set.name.clone(),
                betas: BETAS.to_vec(),
                mrr: mrrs,
            });
        }
    }
    let headers: Vec<String> = std::iter::once("query set".to_string())
        .chain(BETAS.iter().map(|b| format!("β={b}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table = render_table(
        &header_refs,
        &rows
            .iter()
            .map(|r| {
                std::iter::once(r.query_set.clone())
                    .chain(r.mrr.iter().map(|&m| f2(m)))
                    .collect()
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let path = write_json("table4_beta_sweep", &rows).expect("write json");
    println!("json: {}", path.display());
}
