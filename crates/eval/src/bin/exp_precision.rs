//! Experiment E5 — Figures 4(a)–4(f): Precision@N for N = 1..10.
//!
//! One sub-figure per query set; XClean's curve should be high and flat
//! (correct suggestion at the top), PY08's low and gradually rising (the
//! correct suggestion sits deep in its list), the search engines capped at
//! their single-suggestion precision@1.

use xclean_eval::datasets::{
    build_dblp, build_inex, build_search_engines, default_config, query_sets, scale,
};
use xclean_eval::harness::{default_threads, run_set_parallel, SetResult};
use xclean_eval::report::{f2, render_table, write_json};
use xclean_eval::systems::{Py08Suggester, SeSuggester, Suggester, XCleanSuggester};

fn main() {
    let scale = scale();
    println!("== E5 / Figure 4(a)-(f): Precision@N (scale {scale}) ==\n");
    let mut results: Vec<SetResult> = Vec::new();

    for (dataset, engine) in [
        ("DBLP", build_dblp(scale, default_config())),
        ("INEX", build_inex(scale, default_config())),
    ] {
        let sets = query_sets(&engine, dataset);
        let (se1, _) = build_search_engines(&[&sets[0]]);
        let xclean = XCleanSuggester::new(&engine);
        let py08 = Py08Suggester::new(&engine, engine.corpus(), 100);
        let se1 = SeSuggester::new(se1, "SE1");
        let systems: Vec<&(dyn Suggester + Sync)> = vec![&xclean, &py08, &se1];
        for set in &sets {
            println!("-- {} --", set.name);
            let mut rows = Vec::new();
            for sys in &systems {
                let r = run_set_parallel(*sys, set, 10, default_threads());
                let mut row = vec![r.system.clone()];
                for n in [1usize, 2, 3, 5, 10] {
                    row.push(f2(r.precision_at[n - 1]));
                }
                rows.push(row);
                results.push(r);
            }
            println!(
                "{}",
                render_table(&["system", "P@1", "P@2", "P@3", "P@5", "P@10"], &rows)
            );
        }
    }
    let path = write_json("fig4_precision", &results).expect("write json");
    println!("json: {}", path.display());
}
