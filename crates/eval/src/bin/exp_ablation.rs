//! Experiment E11 — ablations of XClean's design choices (DESIGN.md §7):
//!
//! 1. **skip_to alignment** on/off: postings read vs skipped and time;
//! 2. **minimal depth d** sweep: candidate-space size and quality;
//! 3. **probabilistic pruning** on/off: accumulator count vs quality.

use serde::Serialize;
use xclean::XCleanConfig;
use xclean_eval::datasets::{build_dblp, default_config, query_sets, scale};
use xclean_eval::metrics::MetricAccumulator;
use xclean_eval::report::{f2, render_table, write_json};

#[derive(Serialize, Default)]
struct AblationResult {
    label: String,
    mrr: f64,
    avg_secs: f64,
    postings_read: u64,
    postings_skipped: u64,
    subtrees: u64,
    candidates: u64,
    evictions: u64,
}

fn run(
    engine: &xclean::XCleanEngine,
    set: &xclean_datagen::QuerySet,
    cfg: &XCleanConfig,
    label: &str,
) -> AblationResult {
    let mut acc = MetricAccumulator::new(10);
    let mut out = AblationResult {
        label: label.to_string(),
        ..Default::default()
    };
    let start = std::time::Instant::now();
    for case in &set.cases {
        let resp = engine.suggest_keywords_with(&case.dirty, cfg);
        out.postings_read += resp.stats.access.read;
        out.postings_skipped += resp.stats.access.skipped;
        out.subtrees += resp.stats.subtrees;
        out.candidates += resp.stats.candidates_enumerated;
        out.evictions += resp.stats.pruning.evictions;
        let suggestions: Vec<Vec<String>> = resp.suggestions.into_iter().map(|s| s.terms).collect();
        acc.record(&suggestions, &case.clean);
    }
    out.avg_secs = start.elapsed().as_secs_f64() / set.cases.len().max(1) as f64;
    out.mrr = acc.finish().mrr;
    out
}

fn main() {
    let scale = scale();
    println!("== E11: ablations (DBLP-RAND & DBLP-RULE, scale {scale}) ==\n");
    let engine = build_dblp(scale, default_config());
    let sets = query_sets(&engine, "DBLP");
    let mut results: Vec<AblationResult> = Vec::new();

    for set in &sets[1..=2] {
        // (1) skipping ablation
        for (label, skip) in [("skip_to ON", true), ("skip_to OFF", false)] {
            let cfg = XCleanConfig {
                enable_skipping: skip,
                ..default_config()
            };
            results.push(run(&engine, set, &cfg, &format!("{}: {label}", set.name)));
        }
        // (2) min-depth sweep
        for d in [1u32, 2, 3] {
            let cfg = XCleanConfig {
                min_depth: d,
                ..default_config()
            };
            results.push(run(&engine, set, &cfg, &format!("{}: d={d}", set.name)));
        }
        // (3) pruning ablation
        for (label, gamma) in [
            ("γ=1000", Some(1000)),
            ("γ=25", Some(25)),
            ("no pruning", None),
        ] {
            let cfg = XCleanConfig {
                gamma,
                ..default_config()
            };
            results.push(run(&engine, set, &cfg, &format!("{}: {label}", set.name)));
        }
    }

    let table = render_table(
        &[
            "configuration",
            "MRR",
            "avg s",
            "read",
            "skipped",
            "subtrees",
            "candidates",
            "evictions",
        ],
        &results
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    f2(r.mrr),
                    format!("{:.4}", r.avg_secs),
                    r.postings_read.to_string(),
                    r.postings_skipped.to_string(),
                    r.subtrees.to_string(),
                    r.candidates.to_string(),
                    r.evictions.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let path = write_json("exp11_ablation", &results).expect("write json");
    println!("json: {}", path.display());
}
