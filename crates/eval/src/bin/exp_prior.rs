//! Experiment E12 (extension) — entity priors: uniform vs document-length.
//!
//! The paper uses the uniform prior `P(r_j|T) = 1/N` and notes the
//! framework generalises to non-uniform priors; this experiment measures
//! the document-length prior's effect on suggestion quality across all
//! six query sets.

use serde::Serialize;
use xclean::{EntityPrior, XCleanConfig};
use xclean_eval::datasets::{build_dblp, build_inex, default_config, query_sets, scale};
use xclean_eval::metrics::MetricAccumulator;
use xclean_eval::report::{f2, render_table, write_json};

#[derive(Serialize)]
struct Row {
    query_set: String,
    uniform_mrr: f64,
    doclen_mrr: f64,
}

fn main() {
    let scale = scale();
    println!("== E12: entity prior ablation (scale {scale}) ==\n");
    let mut rows: Vec<Row> = Vec::new();
    for (dataset, engine) in [
        ("DBLP", build_dblp(scale, default_config())),
        ("INEX", build_inex(scale, default_config())),
    ] {
        for set in query_sets(&engine, dataset) {
            let mut mrrs = Vec::new();
            for prior in [EntityPrior::Uniform, EntityPrior::DocLength] {
                let cfg = XCleanConfig {
                    prior,
                    ..default_config()
                };
                let mut acc = MetricAccumulator::new(10);
                for case in &set.cases {
                    let resp = engine.suggest_keywords_with(&case.dirty, &cfg);
                    let suggestions: Vec<Vec<String>> =
                        resp.suggestions.into_iter().map(|s| s.terms).collect();
                    acc.record(&suggestions, &case.clean);
                }
                mrrs.push(acc.finish().mrr);
            }
            rows.push(Row {
                query_set: set.name.clone(),
                uniform_mrr: mrrs[0],
                doclen_mrr: mrrs[1],
            });
        }
    }
    let table = render_table(
        &["query set", "uniform prior MRR", "doc-length prior MRR"],
        &rows
            .iter()
            .map(|r| vec![r.query_set.clone(), f2(r.uniform_mrr), f2(r.doclen_mrr)])
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let path = write_json("exp12_prior", &rows).expect("write json");
    println!("json: {}", path.display());
}
