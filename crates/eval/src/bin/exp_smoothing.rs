//! Experiment E13 (extension) — language-model smoothing: Dirichlet μ
//! sweep vs Jelinek–Mercer λ sweep.
//!
//! The paper fixes Dirichlet smoothing ("the state-of-the-art language
//! modeling approach"); this ablation checks how sensitive suggestion
//! quality is to the scheme and its parameter.

use serde::Serialize;
use xclean::XCleanConfig;
use xclean_eval::datasets::{build_dblp, build_inex, default_config, query_sets, scale};
use xclean_eval::metrics::MetricAccumulator;
use xclean_eval::report::{f2, render_table, write_json};
use xclean_lm::Smoothing;

#[derive(Serialize)]
struct Row {
    query_set: String,
    label: String,
    mrr: f64,
}

fn main() {
    let scale = scale();
    println!("== E13: LM smoothing ablation (scale {scale}) ==\n");
    let schemes: Vec<(String, Smoothing)> = vec![
        ("dirichlet μ=500".into(), Smoothing::Dirichlet { mu: 500.0 }),
        (
            "dirichlet μ=2000".into(),
            Smoothing::Dirichlet { mu: 2000.0 },
        ),
        (
            "dirichlet μ=8000".into(),
            Smoothing::Dirichlet { mu: 8000.0 },
        ),
        (
            "jelinek–mercer λ=0.1".into(),
            Smoothing::JelinekMercer { lambda: 0.1 },
        ),
        (
            "jelinek–mercer λ=0.5".into(),
            Smoothing::JelinekMercer { lambda: 0.5 },
        ),
        (
            "jelinek–mercer λ=0.9".into(),
            Smoothing::JelinekMercer { lambda: 0.9 },
        ),
    ];
    let mut rows: Vec<Row> = Vec::new();
    for (dataset, engine) in [
        ("DBLP", build_dblp(scale, default_config())),
        ("INEX", build_inex(scale, default_config())),
    ] {
        // RAND sets carry the signal; CLEAN/RULE behave analogously.
        let set = &query_sets(&engine, dataset)[1];
        for (label, smoothing) in &schemes {
            let cfg = XCleanConfig {
                smoothing: Some(*smoothing),
                ..default_config()
            };
            let mut acc = MetricAccumulator::new(10);
            for case in &set.cases {
                let resp = engine.suggest_keywords_with(&case.dirty, &cfg);
                let suggestions: Vec<Vec<String>> =
                    resp.suggestions.into_iter().map(|s| s.terms).collect();
                acc.record(&suggestions, &case.clean);
            }
            rows.push(Row {
                query_set: set.name.clone(),
                label: label.clone(),
                mrr: acc.finish().mrr,
            });
        }
    }
    let table = render_table(
        &["query set", "smoothing", "MRR"],
        &rows
            .iter()
            .map(|r| vec![r.query_set.clone(), r.label.clone(), f2(r.mrr)])
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let path = write_json("exp13_smoothing", &rows).expect("write json");
    println!("json: {}", path.display());
}
