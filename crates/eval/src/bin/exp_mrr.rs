//! Experiment E4 — Figure 3: MRR of all systems on all six query sets.
//!
//! Expected shape (paper §VII-C): XClean ≫ PY08 everywhere; the simulated
//! search engines win on CLEAN sets (they rarely second-guess clean
//! queries) and do better on RULE than RAND (their log/misspelling table
//! covers human misspellings); XClean is competitive without any log.

use xclean_eval::datasets::{
    build_dblp, build_inex, build_search_engines, default_config, query_sets, scale,
};
use xclean_eval::harness::{default_threads, run_set_parallel, SetResult};
use xclean_eval::report::{f2, render_table, write_json};
use xclean_eval::systems::{Py08Suggester, SeSuggester, Suggester, XCleanSuggester};

fn main() {
    let scale = scale();
    println!("== E4 / Figure 3: MRR of all systems (scale {scale}) ==\n");
    let mut results: Vec<SetResult> = Vec::new();

    for (dataset, engine) in [
        ("DBLP", build_dblp(scale, default_config())),
        ("INEX", build_inex(scale, default_config())),
    ] {
        let sets = query_sets(&engine, dataset);
        let (se1, se2) = build_search_engines(&[&sets[0]]);
        let xclean = XCleanSuggester::new(&engine);
        let py08 = Py08Suggester::new(&engine, engine.corpus(), 100);
        let se1 = SeSuggester::new(se1, "SE1");
        let se2 = SeSuggester::new(se2, "SE2");
        let systems: Vec<&(dyn Suggester + Sync)> = vec![&xclean, &py08, &se1, &se2];
        for set in &sets {
            for sys in &systems {
                xclean_telemetry::log_info!(
                    "xclean_eval",
                    "running system",
                    system = sys.name(),
                    dataset = set.name,
                    queries = set.cases.len(),
                );
                results.push(run_set_parallel(*sys, set, 10, default_threads()));
            }
        }
    }

    // Pivot: rows = query set, columns = system.
    let set_names: Vec<String> = {
        let mut v: Vec<String> = results.iter().map(|r| r.query_set.clone()).collect();
        v.dedup();
        v
    };
    let sys_names = ["XClean", "PY08", "SE1", "SE2"];
    let rows: Vec<Vec<String>> = set_names
        .iter()
        .map(|set| {
            let mut row = vec![set.clone()];
            for sys in sys_names {
                let mrr = results
                    .iter()
                    .find(|r| &r.query_set == set && r.system == sys)
                    .map(|r| f2(r.mrr))
                    .unwrap_or_default();
                row.push(mrr);
            }
            row
        })
        .collect();
    let table = render_table(&["query set", "XClean", "PY08", "SE1", "SE2"], &rows);
    println!("{table}");
    println!("(SE MRR values are lower bounds: the engines return at most one suggestion)");
    let path = write_json("fig3_mrr", &results).expect("write json");
    println!("json: {}", path.display());
}
