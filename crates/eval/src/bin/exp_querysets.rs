//! Experiment E2 — Table II: query sets and sample queries.
//!
//! Builds the six query sets (DBLP/INEX × CLEAN/RAND/RULE) and prints,
//! for each, its size, average length, average injected edit distance,
//! and a sample dirty/clean pair — the content of the paper's Table II.

use serde::Serialize;
use xclean_eval::datasets::{build_dblp, build_inex, default_config, query_sets, scale};
use xclean_eval::report::{render_table, write_json};
use xclean_fastss::edit_distance;

#[derive(Serialize)]
struct Row {
    set: String,
    queries: usize,
    avg_len: f64,
    avg_edit_distance: f64,
    sample_dirty: String,
    sample_clean: String,
}

fn main() {
    let scale = scale();
    println!("== E2 / Table II: query sets (scale {scale}) ==\n");
    let mut rows = Vec::new();
    for (dataset, engine) in [
        ("DBLP", build_dblp(scale, default_config())),
        ("INEX", build_inex(scale, default_config())),
    ] {
        for set in query_sets(&engine, dataset) {
            let avg_len = set.cases.iter().map(|c| c.dirty.len() as f64).sum::<f64>()
                / set.cases.len().max(1) as f64;
            let (mut dist, mut n) = (0usize, 0usize);
            for c in &set.cases {
                for (d, cl) in c.dirty.iter().zip(c.clean.iter()) {
                    if d != cl {
                        dist += edit_distance(d, cl);
                        n += 1;
                    }
                }
            }
            let sample = set.cases.first();
            rows.push(Row {
                set: set.name.clone(),
                queries: set.cases.len(),
                avg_len,
                avg_edit_distance: if n == 0 { 0.0 } else { dist as f64 / n as f64 },
                sample_dirty: sample.map(|c| c.dirty_string()).unwrap_or_default(),
                sample_clean: sample.map(|c| c.clean_string()).unwrap_or_default(),
            });
        }
    }
    let table = render_table(
        &[
            "query set",
            "#q",
            "avg len",
            "avg ed",
            "sample (dirty)",
            "(clean)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.set.clone(),
                    r.queries.to_string(),
                    format!("{:.1}", r.avg_len),
                    format!("{:.2}", r.avg_edit_distance),
                    r.sample_dirty.clone(),
                    r.sample_clean.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let path = write_json("table2_querysets", &rows).expect("write json");
    println!("json: {}", path.display());
}
