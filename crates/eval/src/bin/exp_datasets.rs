//! Experiment E1 — Table I: dataset statistics.
//!
//! Prints, for the two synthetic corpora, the columns of the paper's
//! Table I (size, node count, max/avg depth) plus vocabulary size and the
//! encoded inverted-index size.

use serde::Serialize;
use xclean_eval::datasets::{build_dblp, build_inex, default_config, scale};
use xclean_eval::report::{render_table, write_json};
use xclean_index::codec;
use xclean_xmltree::TreeStats;

#[derive(Serialize)]
struct Row {
    dataset: String,
    size_mb: f64,
    nodes: usize,
    max_depth: u32,
    avg_depth: f64,
    distinct_paths: usize,
    vocabulary: usize,
    index_mb: f64,
}

fn main() {
    let scale = scale();
    println!("== E1 / Table I: dataset statistics (scale {scale}) ==\n");
    let mut rows = Vec::new();
    for (name, engine) in [
        ("INEX", build_inex(scale, default_config())),
        ("DBLP", build_dblp(scale, default_config())),
    ] {
        let corpus = engine.corpus();
        let stats = TreeStats::compute(corpus.tree());
        let index_bytes: usize = corpus.posting_lists().map(|l| codec::encode(l).len()).sum();
        rows.push(Row {
            dataset: name.to_string(),
            size_mb: stats.size_bytes as f64 / 1e6,
            nodes: stats.node_count,
            max_depth: stats.max_depth,
            avg_depth: stats.avg_depth,
            distinct_paths: stats.distinct_paths,
            vocabulary: corpus.vocab().len(),
            index_mb: index_bytes as f64 / 1e6,
        });
    }
    let table = render_table(
        &[
            "dataset",
            "size (MB)",
            "#node",
            "max depth",
            "avg depth",
            "#paths",
            "|V|",
            "index (MB)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    format!("{:.1}", r.size_mb),
                    r.nodes.to_string(),
                    r.max_depth.to_string(),
                    format!("{:.2}", r.avg_depth),
                    r.distinct_paths.to_string(),
                    r.vocabulary.to_string(),
                    format!("{:.1}", r.index_mb),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let path = write_json("table1_datasets", &rows).expect("write json");
    println!("json: {}", path.display());
}
