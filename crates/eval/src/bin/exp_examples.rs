//! Experiment E3 — Table III: example suggestions, XClean vs PY08.
//!
//! Reproduces the qualitative comparison of the paper's Table III: for a
//! handful of dirty queries, prints the top-3 suggestions of both systems,
//! showing PY08's rare-token / connectivity biases against XClean's
//! result-quality-driven ranking.

use serde::Serialize;
use xclean_eval::datasets::{build_dblp, default_config, query_sets, scale};
use xclean_eval::report::write_json;
use xclean_eval::systems::{Py08Suggester, Suggester, XCleanSuggester};

#[derive(Serialize)]
struct Example {
    dirty: String,
    clean: String,
    xclean_top3: Vec<String>,
    py08_top3: Vec<String>,
}

fn main() {
    let scale = scale();
    println!("== E3 / Table III: example suggestions (scale {scale}) ==\n");
    let engine = build_dblp(scale, default_config());
    let xclean = XCleanSuggester::new(&engine);
    let py08 = Py08Suggester::new(&engine, engine.corpus(), 100);

    let sets = query_sets(&engine, "DBLP");
    let rule_set = &sets[2];
    let mut examples = Vec::new();
    for case in rule_set.cases.iter().take(6) {
        let x: Vec<String> = xclean
            .suggest(&case.dirty)
            .into_iter()
            .take(3)
            .map(|s| s.join(" "))
            .collect();
        let p: Vec<String> = py08
            .suggest(&case.dirty)
            .into_iter()
            .take(3)
            .map(|s| s.join(" "))
            .collect();
        examples.push(Example {
            dirty: case.dirty_string(),
            clean: case.clean_string(),
            xclean_top3: x,
            py08_top3: p,
        });
    }
    for e in &examples {
        println!("dirty query : {}", e.dirty);
        println!("ground truth: {}", e.clean);
        println!("  XClean : {}", e.xclean_top3.join("  |  "));
        println!("  PY08   : {}", e.py08_top3.join("  |  "));
        println!();
    }
    let path = write_json("table3_examples", &examples).expect("write json");
    println!("json: {}", path.display());
}
