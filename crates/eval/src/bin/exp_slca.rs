//! Experiment E10 — §VI-B: node-type vs SLCA (vs ELCA) semantics.
//!
//! The paper reports the SLCA variant "works equally well on the DBLP
//! dataset (data-centric), but less well on the INEX dataset
//! (document-centric)". This experiment measures MRR for all three
//! implemented semantics on all six query sets (ELCA is this
//! reproduction's extension, exercising the framework's generality).

use serde::Serialize;
use xclean::Semantics;
use xclean_eval::datasets::{build_dblp, build_inex, default_config, query_sets, scale};
use xclean_eval::harness::run_set;
use xclean_eval::report::{f2, render_table, write_json};
use xclean_eval::systems::XCleanSuggester;

#[derive(Serialize)]
struct Row {
    query_set: String,
    node_type_mrr: f64,
    slca_mrr: f64,
    elca_mrr: f64,
}

fn main() {
    let scale = scale();
    println!("== E10 / §VI-B: node-type vs SLCA semantics (scale {scale}) ==\n");
    let mut rows: Vec<Row> = Vec::new();
    for (dataset, engine) in [
        ("DBLP", build_dblp(scale, default_config())),
        ("INEX", build_inex(scale, default_config())),
    ] {
        let sets = query_sets(&engine, dataset);
        let nt_results: Vec<f64> = {
            let sys = XCleanSuggester::new(&engine);
            sets.iter().map(|s| run_set(&sys, s, 10).mrr).collect()
        };
        let engine_slca = engine.with_semantics(Semantics::Slca);
        let slca_results: Vec<f64> = {
            let sys = XCleanSuggester::new(&engine_slca);
            sets.iter().map(|s| run_set(&sys, s, 10).mrr).collect()
        };
        let engine_elca = engine_slca.with_semantics(Semantics::Elca);
        let elca_results: Vec<f64> = {
            let sys = XCleanSuggester::new(&engine_elca);
            sets.iter().map(|s| run_set(&sys, s, 10).mrr).collect()
        };
        for (((set, nt), slca), elca) in sets
            .iter()
            .zip(nt_results)
            .zip(slca_results)
            .zip(elca_results)
        {
            rows.push(Row {
                query_set: set.name.clone(),
                node_type_mrr: nt,
                slca_mrr: slca,
                elca_mrr: elca,
            });
        }
    }
    let table = render_table(
        &["query set", "node-type MRR", "SLCA MRR", "ELCA MRR"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.query_set.clone(),
                    f2(r.node_type_mrr),
                    f2(r.slca_mrr),
                    f2(r.elca_mrr),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let path = write_json("exp10_slca", &rows).expect("write json");
    println!("json: {}", path.display());
}
