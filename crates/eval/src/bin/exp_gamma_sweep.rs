//! Experiment E7 — Table V: MRR vs the accumulator budget γ.
//!
//! Sweeps γ ∈ {10, 100, 1000, 10000} for XClean (in-memory accumulators,
//! §V-D) and PY08 (top segments per keyword). Expected shape: quality
//! saturates by γ ≈ 1000 for XClean, by γ ≈ 100 for PY08, with the larger
//! candidate spaces (RULE sets) benefiting most from bigger γ.

use serde::Serialize;
use xclean::XCleanConfig;
use xclean_eval::datasets::{build_dblp, build_inex, default_config, query_sets, scale};
use xclean_eval::harness::run_set;
use xclean_eval::metrics::MetricAccumulator;
use xclean_eval::report::{f2, render_table, write_json};
use xclean_eval::systems::Py08Suggester;

const GAMMAS: &[usize] = &[10, 100, 1000, 10_000];

#[derive(Serialize)]
struct Row {
    system: String,
    query_set: String,
    gammas: Vec<usize>,
    mrr: Vec<f64>,
}

fn main() {
    let scale = scale();
    println!("== E7 / Table V: MRR vs γ (β=5, scale {scale}) ==\n");
    let mut rows: Vec<Row> = Vec::new();
    for (dataset, engine) in [
        ("DBLP", build_dblp(scale, default_config())),
        ("INEX", build_inex(scale, default_config())),
    ] {
        for set in query_sets(&engine, dataset) {
            xclean_telemetry::log_info!("xclean_eval", "sweeping gamma", dataset = set.name);
            // XClean: γ = accumulator bound.
            let mut xc = Vec::new();
            for &gamma in GAMMAS {
                let cfg = XCleanConfig {
                    gamma: Some(gamma),
                    ..default_config()
                };
                let mut acc = MetricAccumulator::new(10);
                for case in &set.cases {
                    let resp = engine.suggest_keywords_with(&case.dirty, &cfg);
                    let suggestions: Vec<Vec<String>> =
                        resp.suggestions.into_iter().map(|s| s.terms).collect();
                    acc.record(&suggestions, &case.clean);
                }
                xc.push(acc.finish().mrr);
            }
            rows.push(Row {
                system: "XClean".into(),
                query_set: set.name.clone(),
                gammas: GAMMAS.to_vec(),
                mrr: xc,
            });
            // PY08: γ = per-keyword candidate budget.
            let mut py = Vec::new();
            for &gamma in GAMMAS {
                let sys = Py08Suggester::new(&engine, engine.corpus(), gamma);
                py.push(run_set(&sys, &set, 10).mrr);
            }
            rows.push(Row {
                system: "PY08".into(),
                query_set: set.name.clone(),
                gammas: GAMMAS.to_vec(),
                mrr: py,
            });
        }
    }
    let headers: Vec<String> = ["system", "query set"]
        .into_iter()
        .map(String::from)
        .chain(GAMMAS.iter().map(|g| format!("γ={g}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table = render_table(
        &header_refs,
        &rows
            .iter()
            .map(|r| {
                vec![r.system.clone(), r.query_set.clone()]
                    .into_iter()
                    .chain(r.mrr.iter().map(|&m| f2(m)))
                    .collect()
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let path = write_json("table5_gamma_sweep", &rows).expect("write json");
    println!("json: {}", path.display());
}
