//! Experiment E8 — Table VI: average running time per query.
//!
//! Compares XClean, PY08 and the naïve per-candidate evaluator on all six
//! query sets (γ=1000). Expected shape (paper §VII-D): XClean faster than
//! PY08 (single pass vs repeated passes); RULE sets slower than RAND and
//! CLEAN for every system (more distant variants → more candidates);
//! INEX slower than DBLP (bigger data and vocabulary).
//!
//! Run with `--release`; debug-build timings are not meaningful.

use std::time::Instant;

use serde::Serialize;
use xclean::XCleanConfig;
use xclean_baselines::run_naive;
use xclean_eval::datasets::{build_dblp, build_inex, default_config, query_sets, scale};
use xclean_eval::harness::run_set;
use xclean_eval::report::{render_table, write_json};
use xclean_eval::systems::{Py08Suggester, XCleanSuggester};

#[derive(Serialize)]
struct Row {
    query_set: String,
    xclean_secs: f64,
    py08_secs: f64,
    naive_secs: f64,
}

fn main() {
    let scale = scale();
    println!("== E8 / Table VI: average running time in seconds (γ=1000, scale {scale}) ==\n");
    let mut rows: Vec<Row> = Vec::new();
    for (dataset, engine) in [
        ("DBLP", build_dblp(scale, default_config())),
        ("INEX", build_inex(scale, default_config())),
    ] {
        let sets = query_sets(&engine, dataset);
        let xclean = XCleanSuggester::new(&engine);
        let py08 = Py08Suggester::new(&engine, engine.corpus(), 1000);
        for set in &sets {
            xclean_telemetry::log_info!("xclean_eval", "timing dataset", dataset = set.name);
            let rx = run_set(&xclean, set, 10);
            let rp = run_set(&py08, set, 10);
            // Naïve evaluator, timed directly (no pruning — the point is
            // the cost of candidate-at-a-time evaluation).
            let cfg = XCleanConfig {
                gamma: None,
                ..default_config()
            };
            // The naïve evaluator is orders of magnitude slower (it
            // enumerates the full Cartesian candidate space); it is timed
            // on a query subsample, and only on the data-centric corpus —
            // on INEX its candidate spaces are intractably large, which is
            // itself the finding.
            let naive_secs = if dataset == "DBLP" {
                let naive_sample = set.cases.iter().take(12).collect::<Vec<_>>();
                let start = Instant::now();
                for case in &naive_sample {
                    let slots = engine.make_slots(&case.dirty);
                    let _ = run_naive(engine.corpus(), &slots, &cfg);
                }
                start.elapsed().as_secs_f64() / naive_sample.len().max(1) as f64
            } else {
                f64::NAN
            };
            rows.push(Row {
                query_set: set.name.clone(),
                xclean_secs: rx.avg_time_secs,
                py08_secs: rp.avg_time_secs,
                naive_secs,
            });
        }
    }
    let table = render_table(
        &["query set", "XClean (s)", "PY08 (s)", "naive (s)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.query_set.clone(),
                    format!("{:.4}", r.xclean_secs),
                    format!("{:.4}", r.py08_secs),
                    format!("{:.4}", r.naive_secs),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let path = write_json("table6_timing", &rows).expect("write json");
    println!("json: {}", path.display());
}
