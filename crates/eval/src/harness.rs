//! Experiment harness: runs a suggester over a query set and aggregates
//! quality and timing.

use std::time::Instant;

use serde::Serialize;
use xclean_datagen::QuerySet;

use crate::metrics::{MetricAccumulator, MetricSummary};
use crate::systems::Suggester;

/// Result of one (system, query set) run.
#[derive(Debug, Clone, Serialize)]
pub struct SetResult {
    /// System name.
    pub system: String,
    /// Query-set name (e.g. `DBLP-RAND`).
    pub query_set: String,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// `precision@N`, index 0 = N1.
    pub precision_at: Vec<f64>,
    /// Average per-query wall time in seconds.
    pub avg_time_secs: f64,
    /// Number of queries.
    pub queries: usize,
}

/// Runs `system` over `set`, tracking precision up to `max_n`.
pub fn run_set(system: &dyn Suggester, set: &QuerySet, max_n: usize) -> SetResult {
    let mut acc = MetricAccumulator::new(max_n);
    let mut total = 0.0f64;
    for case in &set.cases {
        let start = Instant::now();
        let suggestions = system.suggest(&case.dirty);
        total += start.elapsed().as_secs_f64();
        acc.record(&suggestions, &case.clean);
    }
    let m: MetricSummary = acc.finish();
    SetResult {
        system: system.name().to_string(),
        query_set: set.name.clone(),
        mrr: m.mrr,
        precision_at: m.precision_at,
        avg_time_secs: if set.cases.is_empty() {
            0.0
        } else {
            total / set.cases.len() as f64
        },
        queries: m.queries,
    }
}

/// Parallel variant of [`run_set`] for *quality* experiments: queries are
/// spread over worker threads with crossbeam scoped threads. Per-query
/// wall times are still measured inside each worker, but under contention
/// they overstate single-query latency — use [`run_set`] for the timing
/// experiments.
pub fn run_set_parallel<S: Suggester + Sync + ?Sized>(
    system: &S,
    set: &QuerySet,
    max_n: usize,
    threads: usize,
) -> SetResult {
    let threads = threads.max(1).min(set.cases.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    /// One query's ranked suggestions plus its wall time.
    type QueryOutcome = (Vec<Vec<String>>, f64);
    // Per-query results, in case order.
    let results: Vec<parking_lot::Mutex<Option<QueryOutcome>>> = (0..set.cases.len())
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(case) = set.cases.get(i) else { break };
                let start = Instant::now();
                let suggestions = system.suggest(&case.dirty);
                let secs = start.elapsed().as_secs_f64();
                *results[i].lock() = Some((suggestions, secs));
            });
        }
    })
    .expect("worker panicked");
    let mut acc = MetricAccumulator::new(max_n);
    let mut total = 0.0f64;
    for (case, slot) in set.cases.iter().zip(results) {
        let (suggestions, secs) = slot.into_inner().expect("query processed");
        total += secs;
        acc.record(&suggestions, &case.clean);
    }
    let m = acc.finish();
    SetResult {
        system: system.name().to_string(),
        query_set: set.name.clone(),
        mrr: m.mrr,
        precision_at: m.precision_at,
        avg_time_secs: if set.cases.is_empty() {
            0.0
        } else {
            total / set.cases.len() as f64
        },
        queries: m.queries,
    }
}

/// A sensible worker count for parallel experiment runs.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xclean_datagen::{Perturbation, QueryCase};

    struct Echo;
    impl Suggester for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn suggest(&self, keywords: &[String]) -> Vec<Vec<String>> {
            vec![keywords.to_vec()]
        }
    }

    #[test]
    fn echo_system_gets_perfect_clean_scores() {
        let set = QuerySet {
            name: "T-CLEAN".into(),
            perturbation: Perturbation::Clean,
            cases: vec![
                QueryCase {
                    dirty: vec!["a".into()],
                    clean: vec!["a".into()],
                },
                QueryCase {
                    dirty: vec!["b".into(), "c".into()],
                    clean: vec!["b".into(), "c".into()],
                },
            ],
        };
        let r = run_set(&Echo, &set, 10);
        assert_eq!(r.mrr, 1.0);
        assert_eq!(r.precision_at[0], 1.0);
        assert_eq!(r.queries, 2);
        assert_eq!(r.system, "echo");
    }

    #[test]
    fn parallel_matches_serial() {
        let set = QuerySet {
            name: "T-CLEAN".into(),
            perturbation: Perturbation::Clean,
            cases: (0..50)
                .map(|i| QueryCase {
                    dirty: vec![format!("w{i}")],
                    clean: vec![format!("w{i}")],
                })
                .collect(),
        };
        let serial = run_set(&Echo, &set, 10);
        let parallel = run_set_parallel(&Echo, &set, 10, 8);
        assert_eq!(serial.mrr, parallel.mrr);
        assert_eq!(serial.precision_at, parallel.precision_at);
        assert_eq!(serial.queries, parallel.queries);
    }

    #[test]
    fn echo_system_fails_dirty_sets() {
        let set = QuerySet {
            name: "T-RAND".into(),
            perturbation: Perturbation::Rand,
            cases: vec![QueryCase {
                dirty: vec!["helth".into()],
                clean: vec!["health".into()],
            }],
        };
        let r = run_set(&Echo, &set, 10);
        assert_eq!(r.mrr, 0.0);
    }
}
