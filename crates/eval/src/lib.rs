//! # xclean-eval
//!
//! Evaluation harness reproducing the paper's experiment suite (§VII):
//! metric definitions (MRR, Precision@N), the uniform [`Suggester`]
//! interface over XClean / PY08 / simulated search engines, shared dataset
//! construction, and result reporting. The `exp_*` binaries in
//! `src/bin/` regenerate every table and figure; see DESIGN.md §4 for the
//! experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod harness;
pub mod metrics;
pub mod report;
pub mod systems;

pub use harness::{default_threads, run_set, run_set_parallel, SetResult};
pub use metrics::{hit_at_n, reciprocal_rank, MetricAccumulator, MetricSummary};
pub use systems::{Py08Suggester, SeSuggester, Suggester, XCleanSuggester};
