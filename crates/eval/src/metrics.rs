//! Retrieval-quality metrics (§VII-B): Mean Reciprocal Rank and
//! Precision@N.

/// Reciprocal rank of the ground truth within a ranked suggestion list
/// (1-based); 0 when absent.
pub fn reciprocal_rank(suggestions: &[Vec<String>], truth: &[String]) -> f64 {
    suggestions
        .iter()
        .position(|s| s.as_slice() == truth)
        .map(|i| 1.0 / (i + 1) as f64)
        .unwrap_or(0.0)
}

/// Whether the truth occurs within the first `n` suggestions.
pub fn hit_at_n(suggestions: &[Vec<String>], truth: &[String], n: usize) -> bool {
    suggestions.iter().take(n).any(|s| s.as_slice() == truth)
}

/// Aggregated quality metrics over a query set.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// `precision@N` for N = 1..=max_n (index 0 holds precision@1).
    pub precision_at: Vec<f64>,
    /// Number of queries aggregated.
    pub queries: usize,
}

impl MetricSummary {
    /// `precision@n` accessor (1-based n).
    pub fn precision(&self, n: usize) -> f64 {
        self.precision_at[n - 1]
    }
}

/// Accumulates per-query results into a [`MetricSummary`].
#[derive(Debug, Clone)]
pub struct MetricAccumulator {
    rr_sum: f64,
    hits: Vec<usize>,
    queries: usize,
    max_n: usize,
}

impl MetricAccumulator {
    /// Tracks precision up to `max_n`.
    pub fn new(max_n: usize) -> Self {
        MetricAccumulator {
            rr_sum: 0.0,
            hits: vec![0; max_n],
            queries: 0,
            max_n,
        }
    }

    /// Records one query's ranked suggestions against its ground truth.
    pub fn record(&mut self, suggestions: &[Vec<String>], truth: &[String]) {
        self.queries += 1;
        self.rr_sum += reciprocal_rank(suggestions, truth);
        if let Some(pos) = suggestions.iter().position(|s| s.as_slice() == truth) {
            for n in pos..self.max_n {
                self.hits[n] += 1;
            }
        }
    }

    /// Finalises the summary.
    pub fn finish(&self) -> MetricSummary {
        let q = self.queries.max(1) as f64;
        MetricSummary {
            mrr: self.rr_sum / q,
            precision_at: self.hits.iter().map(|&h| h as f64 / q).collect(),
            queries: self.queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn reciprocal_rank_basics() {
        let suggestions = vec![s(&["a", "b"]), s(&["c"]), s(&["d", "e"])];
        assert_eq!(reciprocal_rank(&suggestions, &s(&["a", "b"])), 1.0);
        assert_eq!(reciprocal_rank(&suggestions, &s(&["c"])), 0.5);
        assert!((reciprocal_rank(&suggestions, &s(&["d", "e"])) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(reciprocal_rank(&suggestions, &s(&["x"])), 0.0);
        assert_eq!(reciprocal_rank(&[], &s(&["x"])), 0.0);
    }

    #[test]
    fn hit_at_n_cutoff() {
        let suggestions = vec![s(&["a"]), s(&["b"]), s(&["c"])];
        assert!(hit_at_n(&suggestions, &s(&["b"]), 2));
        assert!(!hit_at_n(&suggestions, &s(&["c"]), 2));
        assert!(hit_at_n(&suggestions, &s(&["c"]), 3));
    }

    #[test]
    fn accumulator_aggregates() {
        let mut acc = MetricAccumulator::new(3);
        // truth at rank 1
        acc.record(&[s(&["t"])], &s(&["t"]));
        // truth at rank 2
        acc.record(&[s(&["x"]), s(&["t"])], &s(&["t"]));
        // truth missing
        acc.record(&[s(&["x"])], &s(&["t"]));
        let m = acc.finish();
        assert_eq!(m.queries, 3);
        assert!((m.mrr - (1.0 + 0.5 + 0.0) / 3.0).abs() < 1e-12);
        assert!((m.precision(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.precision(2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.precision(3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn precision_is_monotone_in_n() {
        let mut acc = MetricAccumulator::new(10);
        let lists = [
            vec![s(&["a"]), s(&["t"]), s(&["b"])],
            vec![s(&["t"])],
            vec![s(&["a"]), s(&["b"]), s(&["c"]), s(&["t"])],
        ];
        for l in &lists {
            acc.record(l, &s(&["t"]));
        }
        let m = acc.finish();
        for w in m.precision_at.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let m = MetricAccumulator::new(5).finish();
        assert_eq!(m.mrr, 0.0);
        assert_eq!(m.queries, 0);
    }
}
