//! Shared experiment setup: the two corpora, their engines, query sets,
//! and the simulated search engines. Every `exp_*` binary builds its
//! inputs through this module so experiments are consistent and
//! reproducible.

use xclean::{Semantics, XCleanConfig, XCleanEngine};
use xclean_baselines::{SeConfig, SearchEngineCorrector};
use xclean_datagen::{
    generate_dblp, generate_inex, make_workload, DblpConfig, InexConfig, Perturbation, QuerySet,
    WorkloadSpec, COMMON_MISSPELLINGS,
};

/// Scale factor for corpus sizes, read from `XCLEAN_SCALE` (default 1.0).
/// CI and quick runs can set e.g. `XCLEAN_SCALE=0.1`.
pub fn scale() -> f64 {
    std::env::var("XCLEAN_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s: &f64| s > 0.0)
        .unwrap_or(1.0)
}

/// Default engine configuration used across experiments (β=5, γ=1000,
/// ε=2, d=2, r=0.8, k=10 — the paper's reported settings).
pub fn default_config() -> XCleanConfig {
    XCleanConfig::default()
}

/// Builds the DBLP-substitute engine at the given scale
/// (scale 1.0 → 20 000 publications).
pub fn build_dblp(scale: f64, config: XCleanConfig) -> XCleanEngine {
    let publications = ((20_000.0 * scale) as usize).max(200);
    let tree = generate_dblp(&DblpConfig {
        publications,
        ..Default::default()
    });
    XCleanEngine::new(tree, config)
}

/// Builds the INEX-substitute engine at the given scale
/// (scale 1.0 → 3 000 articles).
pub fn build_inex(scale: f64, config: XCleanConfig) -> XCleanEngine {
    let articles = ((3_000.0 * scale) as usize).max(50);
    let tree = generate_inex(&InexConfig {
        articles,
        ..Default::default()
    });
    XCleanEngine::new(tree, config)
}

/// The three query sets (CLEAN, RAND, RULE) for one dataset.
pub fn query_sets(engine: &XCleanEngine, dataset: &str) -> Vec<QuerySet> {
    let spec = |p| match dataset {
        "DBLP" => WorkloadSpec::dblp(p),
        "INEX" => WorkloadSpec::inex(p),
        other => panic!("unknown dataset {other}"),
    };
    [Perturbation::Clean, Perturbation::Rand, Perturbation::Rule]
        .into_iter()
        .map(|p| make_workload(engine.corpus(), &spec(p)))
        .collect()
}

/// Builds the two simulated search engines from a synthetic query log:
/// the CLEAN workloads (what real users asked) with Zipf-ish frequencies,
/// plus the misspelling table. SE1 is stronger (ε=2, full table); SE2 is
/// weaker (ε=1, popularity-heavier) — mirroring that the two real engines
/// performed similarly but not identically.
pub fn build_search_engines(
    clean_sets: &[&QuerySet],
) -> (SearchEngineCorrector, SearchEngineCorrector) {
    let mut log: Vec<(String, u64)> = Vec::new();
    for set in clean_sets {
        for (i, case) in set.cases.iter().enumerate() {
            let freq = (1000 / (i + 1)) as u64 + 1;
            log.push((case.clean_string(), freq));
        }
    }
    let table: Vec<(String, String)> = COMMON_MISSPELLINGS
        .iter()
        .map(|&(m, c)| (m.to_string(), c.to_string()))
        .collect();
    let se1 = SearchEngineCorrector::build(
        log.iter().map(|(q, f)| (q.as_str(), *f)),
        table.clone(),
        SeConfig {
            epsilon: 2,
            beta: 5.0,
            alpha: 1.0,
        },
    );
    let se2 = SearchEngineCorrector::build(
        log.iter().map(|(q, f)| (q.as_str(), *f)),
        table,
        SeConfig {
            epsilon: 1,
            beta: 4.0,
            alpha: 1.5,
        },
    );
    (se1, se2)
}

/// Convenience: an engine with SLCA semantics sharing the same corpus
/// parameters (rebuilds the corpus; used by exp_slca).
pub fn build_dblp_slca(scale: f64, config: XCleanConfig) -> XCleanEngine {
    build_dblp(scale, config).with_semantics(Semantics::Slca)
}

/// INEX engine with SLCA semantics.
pub fn build_inex_slca(scale: f64, config: XCleanConfig) -> XCleanEngine {
    build_inex(scale, config).with_semantics(Semantics::Slca)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_builds_quickly() {
        let e = build_dblp(0.02, default_config());
        assert!(e.corpus().vocab().len() > 100);
        let sets = query_sets(&e, "DBLP");
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].name, "DBLP-CLEAN");
        assert_eq!(sets[1].name, "DBLP-RAND");
        assert_eq!(sets[2].name, "DBLP-RULE");
        assert!(!sets[1].cases.is_empty());
    }

    #[test]
    fn search_engines_build_from_clean_sets() {
        let e = build_dblp(0.02, default_config());
        let sets = query_sets(&e, "DBLP");
        let (se1, _se2) = build_search_engines(&[&sets[0]]);
        // A clean query term is known to the log.
        let case = &sets[0].cases[0];
        assert!(se1.knows(&case.clean[0]));
    }

    #[test]
    fn scale_env_parsing() {
        // No env set in tests → default.
        assert!(scale() > 0.0);
    }
}
