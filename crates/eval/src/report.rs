//! Result rendering: fixed-width ASCII tables (stdout) and JSON dumps
//! (under `target/experiments/`) for every experiment binary.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Renders a fixed-width table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    let mut out = String::new();
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Formats a float to 2 decimals (the paper's table precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Directory where experiment JSON results are written.
pub fn experiments_dir() -> PathBuf {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Serialises `value` to `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let path = experiments_dir().join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["system", "mrr"],
            &[
                vec!["XClean".into(), "0.94".into()],
                vec!["PY08".into(), "0.24".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6); // sep, header, sep, 2 rows, sep
        let width = lines[0].len();
        for l in &lines {
            assert_eq!(l.len(), width, "misaligned: {l}");
        }
        assert!(t.contains("XClean"));
    }

    #[test]
    fn f2_rounds() {
        assert_eq!(f2(0.949), "0.95");
        assert_eq!(f2(1.0), "1.00");
    }

    #[test]
    fn write_json_roundtrip() {
        let path = write_json("unit_test_report", &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
