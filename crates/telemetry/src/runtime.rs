//! Server-runtime observability: event-loop and worker-pool health.
//!
//! Where [`crate::ring`] and [`crate::window`] make individual *requests*
//! observable, this module makes the *runtime carrying them* observable:
//!
//! - **Loop lag** — how long one event-loop iteration spent processing
//!   before it could call `epoll_wait` again. A saturated loop shows up
//!   here long before it shows up as 503s.
//! - **Events per wake** — how many readiness events each `epoll_wait`
//!   returned. Rising batch sizes mean the loop is falling behind.
//! - **Queue wait** — enqueue → worker-pickup latency for dispatched
//!   jobs. This is the saturation signal for the scoring worker pool.
//! - **Worker busy time** — per-worker busy nanoseconds, turned into a
//!   utilization gauge against wall time at render.
//! - **Flight recorder** — a bounded ring of runtime events (loop
//!   iterations, connection opens/closes, job dispatch/completion)
//!   dumpable as Chrome trace-event JSON for `chrome://tracing`.
//!
//! Everything here is record-only and clock-agnostic: callers stamp
//! times with their own [`crate::clock::Clock`], so tests drive the whole
//! module with a [`crate::clock::ManualClock`] and zero sleeps. Recording
//! is lock-free (atomic histogram buckets) except for flight-recorder
//! pushes, which take one short mutex on a bounded deque — and a
//! capacity of 0 disables the recorder entirely, making `push` a no-op.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::{log2_bucket_upper, Histogram, HIST_BUCKETS};
use crate::names;

/// One kind of runtime event the flight recorder can remember.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeEventKind {
    /// One event-loop iteration: `epoll_wait` returned `events`
    /// readiness events and the previous iteration's processing took
    /// `lag_nanos` before the loop could wait again.
    LoopWake {
        /// Readiness events returned by this wait.
        events: u64,
        /// Nanoseconds the loop spent busy before this wait.
        lag_nanos: u64,
    },
    /// A connection was accepted and registered.
    ConnOpen {
        /// Connection token/ID.
        conn: u64,
    },
    /// A connection was closed (any reason: EOF, error, timeout, drain).
    ConnClose {
        /// Connection token/ID.
        conn: u64,
    },
    /// A parsed request was dispatched to the worker pool.
    Dispatch {
        /// Connection token/ID.
        conn: u64,
        /// Request sequence number on that connection.
        seq: u64,
    },
    /// A response was completed and handed back for writing.
    Complete {
        /// Connection token/ID.
        conn: u64,
        /// Request sequence number on that connection.
        seq: u64,
        /// HTTP status of the response.
        status: u16,
    },
}

impl RuntimeEventKind {
    /// The event's display name (also the Chrome trace-event name).
    pub fn name(&self) -> &'static str {
        match self {
            RuntimeEventKind::LoopWake { .. } => "loop_wake",
            RuntimeEventKind::ConnOpen { .. } => "conn_open",
            RuntimeEventKind::ConnClose { .. } => "conn_close",
            RuntimeEventKind::Dispatch { .. } => "dispatch",
            RuntimeEventKind::Complete { .. } => "complete",
        }
    }

    /// The event's payload as a JSON object body (the Chrome `args`).
    fn args_json(&self) -> String {
        match self {
            RuntimeEventKind::LoopWake { events, lag_nanos } => {
                format!("{{\"events\":{events},\"lag_nanos\":{lag_nanos}}}")
            }
            RuntimeEventKind::ConnOpen { conn } | RuntimeEventKind::ConnClose { conn } => {
                format!("{{\"conn\":{conn}}}")
            }
            RuntimeEventKind::Dispatch { conn, seq } => {
                format!("{{\"conn\":{conn},\"seq\":{seq}}}")
            }
            RuntimeEventKind::Complete { conn, seq, status } => {
                format!("{{\"conn\":{conn},\"seq\":{seq},\"status\":{status}}}")
            }
        }
    }
}

/// One recorded runtime event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeEvent {
    /// Monotonic recording sequence number (assigned by the recorder).
    pub seq: u64,
    /// Event timestamp in clock nanoseconds.
    pub ts_nanos: u64,
    /// What happened.
    pub kind: RuntimeEventKind,
}

/// Bounded ring of [`RuntimeEvent`]s; capacity 0 disables recording.
#[derive(Debug)]
pub struct FlightRecorder {
    events: Mutex<VecDeque<RuntimeEvent>>,
    capacity: usize,
    next_seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` events. Capacity
    /// 0 means disabled: pushes are no-ops and dumps are empty.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            events: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity,
            next_seq: AtomicU64::new(1),
        }
    }

    /// Whether the recorder retains anything (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event at `ts_nanos`; evicts the oldest when full.
    /// No-op when disabled.
    pub fn push(&self, ts_nanos: u64, kind: RuntimeEventKind) {
        if self.capacity == 0 {
            return;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut q = self.events.lock().expect("flight recorder poisoned");
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(RuntimeEvent {
            seq,
            ts_nanos,
            kind,
        });
    }

    /// Events recorded over the recorder's lifetime (≥ `len()`; stays 0
    /// while disabled).
    pub fn total_recorded(&self) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.next_seq.load(Ordering::Relaxed) - 1
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.lock().expect("flight recorder poisoned").len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `n` most recent events, oldest first (ready for replay).
    pub fn recent(&self, n: usize) -> Vec<RuntimeEvent> {
        let q = self.events.lock().expect("flight recorder poisoned");
        let skip = q.len().saturating_sub(n);
        q.iter().skip(skip).copied().collect()
    }

    /// The `n` most recent events as Chrome trace-event JSON — instant
    /// events loadable in `chrome://tracing` / Perfetto, same envelope
    /// as [`crate::Tracer::chrome_trace_json`].
    pub fn chrome_trace_json(&self, n: usize) -> String {
        let events = self.recent(n);
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"runtime\",\"ph\":\"i\",\"ts\":{:.3},\
                 \"pid\":1,\"tid\":0,\"s\":\"g\",\"args\":{}}}",
                e.kind.name(),
                e.ts_nanos as f64 / 1e3,
                e.kind.args_json(),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// A finite log₂ bucket upper bound rendered as fractional seconds
/// (Rust's `f64` display never uses scientific notation, so `le` values
/// stay parseable Prometheus floats).
fn seconds_le(upper_nanos: u64) -> String {
    format!("{}", upper_nanos as f64 / 1e9)
}

/// Renders one histogram in conformant Prometheus exposition, converting
/// values with `fmt_le` (bucket bounds) and `fmt_sum` (the `_sum` line).
/// Mirrors [`crate::MetricsRegistry::metrics_text`]: cumulative buckets
/// up to the highest occupied one, a final `+Inf` carrying the total,
/// paired `# HELP`/`# TYPE` lines. Empty histograms still emit their
/// zero bucket, `+Inf`, `_sum`, and `_count` so the series is present
/// from the first scrape.
fn render_histogram(
    out: &mut String,
    name: &str,
    h: &Histogram,
    fmt_le: impl Fn(u64) -> String,
    fmt_sum: impl Fn(u64) -> String,
) {
    out.push_str(&format!(
        "# HELP {name} {}\n# TYPE {name} histogram\n",
        names::help_for(name)
    ));
    let counts = h.bucket_counts();
    let max_used = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate().take(max_used + 1) {
        cum += c;
        if i == HIST_BUCKETS - 1 {
            break; // the final bucket is only ever shown as +Inf
        }
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cum}\n",
            fmt_le(log2_bucket_upper(i))
        ));
    }
    let total: u64 = counts.iter().sum();
    out.push_str(&format!(
        "{name}_bucket{{le=\"+Inf\"}} {total}\n{name}_sum {}\n{name}_count {total}\n",
        fmt_sum(h.sum())
    ));
}

/// The server-runtime stats bundle: one per running server.
///
/// Recording methods take explicit values (the caller stamps times with
/// its own clock); rendering takes the elapsed wall nanos so worker
/// utilization is a pure function of what was recorded.
#[derive(Debug)]
pub struct RuntimeStats {
    loop_lag: Histogram,
    events_per_wake: Histogram,
    queue_wait: Histogram,
    worker_busy: Vec<AtomicU64>,
    flight: FlightRecorder,
}

impl RuntimeStats {
    /// Stats for a pool of `workers` workers and a flight recorder of
    /// `flight_capacity` events (0 disables the recorder).
    pub fn new(workers: usize, flight_capacity: usize) -> Self {
        RuntimeStats {
            loop_lag: Histogram::default(),
            events_per_wake: Histogram::default(),
            queue_wait: Histogram::default(),
            worker_busy: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            flight: FlightRecorder::new(flight_capacity),
        }
    }

    /// Records one event-loop iteration: `events` readiness events were
    /// drained, after the loop spent `lag_nanos` busy since its previous
    /// wait returned.
    pub fn record_loop_wake(&self, events: u64, lag_nanos: u64) {
        self.events_per_wake.record(events);
        self.loop_lag.record(lag_nanos);
    }

    /// Records one job's enqueue → worker-pickup wait.
    pub fn record_queue_wait(&self, nanos: u64) {
        self.queue_wait.record(nanos);
    }

    /// Adds busy time to worker `worker` (ignored if out of range —
    /// degenerate configs must not panic the pool).
    pub fn record_worker_busy(&self, worker: usize, nanos: u64) {
        if let Some(w) = self.worker_busy.get(worker) {
            w.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// The loop-lag histogram (nanosecond samples).
    pub fn loop_lag(&self) -> &Histogram {
        &self.loop_lag
    }

    /// The events-per-wake histogram.
    pub fn events_per_wake(&self) -> &Histogram {
        &self.events_per_wake
    }

    /// The queue-wait histogram (nanosecond samples).
    pub fn queue_wait(&self) -> &Histogram {
        &self.queue_wait
    }

    /// Number of workers tracked.
    pub fn workers(&self) -> usize {
        self.worker_busy.len()
    }

    /// Busy nanoseconds recorded for worker `worker` (0 if out of range).
    pub fn worker_busy_nanos(&self, worker: usize) -> u64 {
        self.worker_busy
            .get(worker)
            .map_or(0, |w| w.load(Ordering::Relaxed))
    }

    /// Per-worker utilization over `elapsed_nanos` of wall time, each
    /// clamped to [0, 1]. All zeros when no time has elapsed.
    pub fn utilization(&self, elapsed_nanos: u64) -> Vec<f64> {
        self.worker_busy
            .iter()
            .map(|w| {
                if elapsed_nanos == 0 {
                    0.0
                } else {
                    (w.load(Ordering::Relaxed) as f64 / elapsed_nanos as f64).min(1.0)
                }
            })
            .collect()
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The runtime series in Prometheus text format: events-per-wake
    /// (integer `le`), loop-lag and queue-wait (fractional-second `le`,
    /// `_sum` in seconds), and the per-worker utilization gauge computed
    /// against `elapsed_nanos` of wall time. Series are emitted even
    /// when empty so every accept model exposes the full runtime shape.
    pub fn render_metrics(&self, elapsed_nanos: u64) -> String {
        let mut out = String::new();
        render_histogram(
            &mut out,
            names::EVENTS_PER_WAKE,
            &self.events_per_wake,
            |upper| upper.to_string(),
            |sum| sum.to_string(),
        );
        render_histogram(
            &mut out,
            names::LOOP_LAG_SECONDS,
            &self.loop_lag,
            seconds_le,
            seconds_le,
        );
        render_histogram(
            &mut out,
            names::QUEUE_WAIT_SECONDS,
            &self.queue_wait,
            seconds_le,
            seconds_le,
        );
        out.push_str(&format!(
            "# HELP {name} {}\n# TYPE {name} gauge\n",
            names::help_for(names::WORKER_UTILIZATION),
            name = names::WORKER_UTILIZATION
        ));
        for (i, u) in self.utilization(elapsed_nanos).iter().enumerate() {
            out.push_str(&format!(
                "{}{{worker=\"{i}\"}} {u:.6}\n",
                names::WORKER_UTILIZATION
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};

    /// ManualClock drives the histograms: lag and queue-wait samples are
    /// clock differences, no sleeps anywhere.
    #[test]
    fn manual_clock_drives_loop_lag_and_queue_wait() {
        let clock = ManualClock::starting_at(1_000);
        let stats = RuntimeStats::new(2, 16);

        let wait_returned = clock.now_nanos();
        clock.advance(700); // the loop is "busy" for 700 ns
        let next_wait = clock.now_nanos();
        stats.record_loop_wake(3, next_wait - wait_returned);

        let enqueued = clock.now_nanos();
        clock.advance(5_000); // the job waits 5 µs for a worker
        stats.record_queue_wait(clock.now_nanos() - enqueued);

        assert_eq!(stats.loop_lag().count(), 1);
        assert_eq!(stats.loop_lag().sum(), 700);
        // 700 lands in [512, 1024): quantile reports the upper bound.
        assert_eq!(stats.loop_lag().quantile(0.5), 1023);
        assert_eq!(stats.events_per_wake().sum(), 3);
        assert_eq!(stats.queue_wait().count(), 1);
        assert_eq!(stats.queue_wait().sum(), 5_000);
    }

    #[test]
    fn worker_utilization_is_busy_over_wall() {
        let stats = RuntimeStats::new(2, 0);
        stats.record_worker_busy(0, 250);
        stats.record_worker_busy(0, 250);
        stats.record_worker_busy(1, 2_000); // more busy than wall: clamp
        stats.record_worker_busy(9, 1); // out of range: ignored
        let u = stats.utilization(1_000);
        assert_eq!(u.len(), 2);
        assert!((u[0] - 0.5).abs() < 1e-9, "{u:?}");
        assert_eq!(u[1], 1.0, "{u:?}");
        assert_eq!(stats.utilization(0), vec![0.0, 0.0]);
        assert_eq!(stats.worker_busy_nanos(0), 500);
        assert_eq!(stats.worker_busy_nanos(9), 0);
    }

    #[test]
    fn flight_recorder_wraps_around_keeping_newest() {
        let rec = FlightRecorder::new(4);
        assert!(rec.is_enabled());
        for i in 0..10u64 {
            rec.push(i * 100, RuntimeEventKind::ConnOpen { conn: i });
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.total_recorded(), 10);
        let events = rec.recent(100);
        let conns: Vec<u64> = events
            .iter()
            .map(|e| match e.kind {
                RuntimeEventKind::ConnOpen { conn } => conn,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(conns, [6, 7, 8, 9], "oldest evicted, order preserved");
        assert_eq!(events[0].seq, 7);
        // recent(n) trims from the old end.
        let last_two = rec.recent(2);
        assert_eq!(last_two.len(), 2);
        assert_eq!(last_two[1].ts_nanos, 900);
    }

    #[test]
    fn zero_capacity_recorder_is_inert() {
        let rec = FlightRecorder::new(0);
        assert!(!rec.is_enabled());
        rec.push(1, RuntimeEventKind::ConnOpen { conn: 1 });
        assert_eq!(rec.len(), 0);
        assert_eq!(rec.total_recorded(), 0);
        assert_eq!(rec.chrome_trace_json(10), "{\"traceEvents\":[]}");
    }

    #[test]
    fn chrome_trace_dump_is_loadable_instant_events() {
        let rec = FlightRecorder::new(8);
        rec.push(
            1_500,
            RuntimeEventKind::LoopWake {
                events: 2,
                lag_nanos: 300,
            },
        );
        rec.push(2_000, RuntimeEventKind::Dispatch { conn: 7, seq: 1 });
        rec.push(
            3_000,
            RuntimeEventKind::Complete {
                conn: 7,
                seq: 1,
                status: 200,
            },
        );
        rec.push(4_000, RuntimeEventKind::ConnClose { conn: 7 });
        let json = rec.chrome_trace_json(10);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        assert!(
            json.contains("\"name\":\"loop_wake\",\"cat\":\"runtime\",\"ph\":\"i\",\"ts\":1.500"),
            "{json}"
        );
        assert!(
            json.contains("\"args\":{\"events\":2,\"lag_nanos\":300}"),
            "{json}"
        );
        assert!(
            json.contains("\"name\":\"complete\"") && json.contains("\"status\":200"),
            "{json}"
        );
        // Events come out in recording (chronological) order.
        let wake = json.find("loop_wake").unwrap();
        let close = json.find("conn_close").unwrap();
        assert!(wake < close);
    }

    #[test]
    fn runtime_metrics_render_seconds_and_are_present_when_empty() {
        let stats = RuntimeStats::new(1, 0);
        // Empty: every series still renders (thread-pool accept model
        // never records loop lag, but the scrape shape is identical).
        let empty = stats.render_metrics(0);
        for name in [
            names::EVENTS_PER_WAKE,
            names::LOOP_LAG_SECONDS,
            names::QUEUE_WAIT_SECONDS,
        ] {
            assert!(
                empty.contains(&format!("{name}_bucket{{le=\"+Inf\"}} 0")),
                "{name} missing from empty render: {empty}"
            );
            assert!(empty.contains(&format!("{name}_count 0")), "{empty}");
        }
        assert!(
            empty.contains("xclean_worker_utilization{worker=\"0\"} 0.000000"),
            "{empty}"
        );

        stats.record_loop_wake(3, 700);
        stats.record_queue_wait(700);
        stats.record_worker_busy(0, 500);
        let text = stats.render_metrics(1_000);
        // 700 ns is bucket [512, 1024): le is 1023 ns = 0.000001023 s.
        assert!(
            text.contains("xclean_loop_lag_seconds_bucket{le=\"0.000001023\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("xclean_loop_lag_seconds_sum 0.0000007"),
            "{text}"
        );
        assert!(
            text.contains("xclean_queue_wait_seconds_bucket{le=\"0.000001023\"} 1"),
            "{text}"
        );
        // events-per-wake keeps integer bounds: 3 is in [2, 4) → le 3.
        assert!(
            text.contains("xclean_events_per_wake_bucket{le=\"3\"} 1"),
            "{text}"
        );
        assert!(text.contains("xclean_events_per_wake_sum 3"), "{text}");
        assert!(
            text.contains("xclean_worker_utilization{worker=\"0\"} 0.500000"),
            "{text}"
        );
    }

    /// Same conformance invariants the registry's exposition holds:
    /// HELP/TYPE pairing and cumulative buckets ending at +Inf.
    #[test]
    fn runtime_metrics_are_conformant() {
        let stats = RuntimeStats::new(2, 0);
        for v in [0u64, 1, 3, 700, 700, 5_000] {
            stats.record_queue_wait(v);
            stats.record_loop_wake(v, v);
        }
        let text = stats.render_metrics(1_000);
        let lines: Vec<&str> = text.lines().collect();
        let mut current_family: Option<&str> = None;
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(rest.len() > name.len() + 1, "HELP must carry text: {line}");
                let next = lines.get(i + 1).unwrap_or(&"");
                assert!(
                    next.starts_with(&format!("# TYPE {name} ")),
                    "HELP for {name} not followed by TYPE: {next}"
                );
                current_family = Some(name);
            } else if !line.starts_with('#') && !line.is_empty() {
                let family = current_family.expect("series before any TYPE");
                let series = line.split(['{', ' ']).next().unwrap();
                assert!(
                    series == family
                        || series
                            .strip_prefix(family)
                            .is_some_and(|s| matches!(s, "_bucket" | "_sum" | "_count")),
                    "series {series} outside family {family}"
                );
            }
        }
        // Buckets are cumulative and end at +Inf == count.
        let mut prev = 0u64;
        let mut inf = false;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("xclean_queue_wait_seconds_bucket{le=\"") else {
                continue;
            };
            assert!(!inf, "+Inf must be last");
            let (le, count) = rest.split_once("\"} ").unwrap();
            let cum: u64 = count.parse().unwrap();
            assert!(cum >= prev, "cumulative: {line}");
            prev = cum;
            if le == "+Inf" {
                inf = true;
                assert_eq!(cum, 6);
            } else {
                le.parse::<f64>().expect("finite le must parse as float");
            }
        }
        assert!(inf);
    }

    #[test]
    fn concurrent_flight_pushes_never_lose_count() {
        let rec = FlightRecorder::new(1024);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let rec = &rec;
                scope.spawn(move || {
                    for i in 0..100 {
                        rec.push(i, RuntimeEventKind::ConnOpen { conn: t });
                    }
                });
            }
        });
        assert_eq!(rec.total_recorded(), 800);
        assert_eq!(rec.len(), 800);
    }
}
