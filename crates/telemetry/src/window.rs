//! Rolling-window request aggregates: q/s, error rate, cache hit ratio,
//! and latency quantiles over the last 1, 5, and 15 minutes.
//!
//! Each window is a fixed wheel of 60 buckets (1 s / 5 s / 15 s per
//! bucket respectively). The wheel is advanced *by request arrival*
//! against an injected [`crate::clock::Clock`] — there is no background
//! thread, no timer, and no wall-clock read: a bucket whose time has
//! passed is zeroed lazily the next time anyone records or reads. Tests
//! drive a [`crate::clock::ManualClock`] forward and assert rotation
//! deterministically.
//!
//! Memory is fixed: 3 wheels × 60 buckets × (4 counters + a 64-slot
//! log₂ latency histogram) ≈ 100 kB, owned for the process lifetime.
//! Recording locks one small mutex per wheel for a few adds — the
//! serving path records once per *completed request*, far off the
//! per-posting hot paths.

use std::sync::Mutex;

use crate::metrics::{log2_bucket_of, log2_quantile, HIST_BUCKETS};

/// Buckets per wheel (all three windows divide into 60 slices).
const WHEEL_SLOTS: usize = 60;

/// The windows exposed on `/statusz` and `/metrics` `_window` series.
const WINDOWS: [(&str, u64); 3] = [("1m", 60), ("5m", 300), ("15m", 900)];

/// What one completed request contributes to the windows.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowEvent {
    /// Whole-request latency in nanoseconds.
    pub total_nanos: u64,
    /// Whether the response status was 4xx/5xx.
    pub error: bool,
    /// Response-cache outcome, when the route consulted the cache.
    pub cache_hit: Option<bool>,
    /// Whether the request breached its latency SLO threshold (the
    /// caller compares `total_nanos` against its configured objective;
    /// the windows just count).
    pub slo_breach: bool,
}

/// One wheel bucket: plain integers, guarded by the wheel's mutex.
#[derive(Debug, Clone)]
struct Bucket {
    count: u64,
    errors: u64,
    cache_hits: u64,
    cache_misses: u64,
    slo_breaches: u64,
    latency: [u64; HIST_BUCKETS],
}

impl Bucket {
    fn zeroed() -> Self {
        Bucket {
            count: 0,
            errors: 0,
            cache_hits: 0,
            cache_misses: 0,
            slo_breaches: 0,
            latency: [0; HIST_BUCKETS],
        }
    }

    fn clear(&mut self) {
        *self = Bucket::zeroed();
    }
}

#[derive(Debug)]
struct Wheel {
    /// Nanoseconds each bucket covers.
    slice_nanos: u64,
    buckets: Vec<Bucket>,
    /// Index of the bucket covering `[head_start, head_start + slice)`.
    head: usize,
    head_start_nanos: u64,
}

impl Wheel {
    fn new(window_secs: u64) -> Self {
        Wheel {
            slice_nanos: window_secs * 1_000_000_000 / WHEEL_SLOTS as u64,
            buckets: vec![Bucket::zeroed(); WHEEL_SLOTS],
            head: 0,
            head_start_nanos: 0,
        }
    }

    /// Advances the head until it covers `now`, zeroing every bucket the
    /// head passes over (their time window has expired).
    fn rotate_to(&mut self, now_nanos: u64) {
        if now_nanos < self.head_start_nanos + self.slice_nanos {
            return;
        }
        let steps = (now_nanos - self.head_start_nanos) / self.slice_nanos;
        if steps as usize >= WHEEL_SLOTS {
            // The whole window elapsed since the last event: everything
            // is stale. Re-align the head to the bucket grid.
            for b in &mut self.buckets {
                b.clear();
            }
            self.head_start_nanos = (now_nanos / self.slice_nanos) * self.slice_nanos;
            return;
        }
        for _ in 0..steps {
            self.head = (self.head + 1) % WHEEL_SLOTS;
            self.buckets[self.head].clear();
            self.head_start_nanos += self.slice_nanos;
        }
    }

    fn record(&mut self, now_nanos: u64, event: &WindowEvent) {
        self.rotate_to(now_nanos);
        let b = &mut self.buckets[self.head];
        b.count += 1;
        if event.error {
            b.errors += 1;
        }
        match event.cache_hit {
            Some(true) => b.cache_hits += 1,
            Some(false) => b.cache_misses += 1,
            None => {}
        }
        if event.slo_breach {
            b.slo_breaches += 1;
        }
        b.latency[log2_bucket_of(event.total_nanos)] += 1;
    }

    fn snapshot(
        &mut self,
        now_nanos: u64,
        label: &'static str,
        window_secs: u64,
    ) -> WindowSnapshot {
        self.rotate_to(now_nanos);
        let mut out = WindowSnapshot {
            label,
            window_secs,
            ..Default::default()
        };
        let mut latency = [0u64; HIST_BUCKETS];
        for b in &self.buckets {
            out.count += b.count;
            out.errors += b.errors;
            out.cache_hits += b.cache_hits;
            out.cache_misses += b.cache_misses;
            out.slo_breaches += b.slo_breaches;
            for (acc, c) in latency.iter_mut().zip(b.latency.iter()) {
                *acc += c;
            }
        }
        out.p50_nanos = log2_quantile(&latency, 0.50);
        out.p95_nanos = log2_quantile(&latency, 0.95);
        out.p99_nanos = log2_quantile(&latency, 0.99);
        out
    }
}

/// Point-in-time aggregate of one window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Window label (`1m`, `5m`, `15m`).
    pub label: &'static str,
    /// Window length in seconds.
    pub window_secs: u64,
    /// Requests completed inside the window.
    pub count: u64,
    /// Of those, 4xx/5xx responses.
    pub errors: u64,
    /// Response-cache hits inside the window.
    pub cache_hits: u64,
    /// Response-cache misses inside the window.
    pub cache_misses: u64,
    /// Requests that breached their latency SLO inside the window.
    pub slo_breaches: u64,
    /// Median request latency (bucket upper bound).
    pub p50_nanos: u64,
    /// 95th-percentile request latency.
    pub p95_nanos: u64,
    /// 99th-percentile request latency.
    pub p99_nanos: u64,
}

impl WindowSnapshot {
    /// Requests per second over the window length.
    pub fn qps(&self) -> f64 {
        self.count as f64 / self.window_secs as f64
    }

    /// Share of requests that errored (0 when the window is empty).
    pub fn error_ratio(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.errors as f64 / self.count as f64
        }
    }

    /// Cache hit share among cache-consulting requests (0 when none).
    pub fn cache_hit_ratio(&self) -> f64 {
        let consulted = self.cache_hits + self.cache_misses;
        if consulted == 0 {
            0.0
        } else {
            self.cache_hits as f64 / consulted as f64
        }
    }

    /// Share of requests that breached the latency SLO (0 when the
    /// window is empty).
    pub fn slo_breach_ratio(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.slo_breaches as f64 / self.count as f64
        }
    }

    /// Multi-window SLO burn rate against [`SLO_ERROR_BUDGET`]: how many
    /// times faster than "exactly on objective" the window consumed its
    /// error budget. 1.0 = burning at precisely the sustainable rate;
    /// ≥ 14 on a short window is the classic page-now signal.
    pub fn slo_burn_rate(&self) -> f64 {
        self.slo_breach_ratio() / SLO_ERROR_BUDGET
    }
}

/// The fixed SLO objective every burn rate is computed against: 99% of
/// requests inside the latency threshold, i.e. a 1% error budget. The
/// *threshold* is configurable per server; the objective is not — burn
/// rates across corpora stay directly comparable.
pub const SLO_ERROR_BUDGET: f64 = 0.01;

/// The 1m/5m/15m rolling aggregates, advanced by request arrival.
#[derive(Debug)]
pub struct RollingWindows {
    wheels: Vec<Mutex<Wheel>>,
}

impl Default for RollingWindows {
    fn default() -> Self {
        RollingWindows::new()
    }
}

impl RollingWindows {
    /// Fresh wheels, all empty, epoch-aligned at 0.
    pub fn new() -> Self {
        RollingWindows {
            wheels: WINDOWS
                .iter()
                .map(|(_, secs)| Mutex::new(Wheel::new(*secs)))
                .collect(),
        }
    }

    /// Records one completed request at clock time `now_nanos`.
    pub fn record(&self, now_nanos: u64, event: &WindowEvent) {
        for wheel in &self.wheels {
            wheel
                .lock()
                .expect("window wheel poisoned")
                .record(now_nanos, event);
        }
    }

    /// Snapshots every window at clock time `now_nanos` (1m, 5m, 15m in
    /// order). Rotation happens here too, so an idle server's windows
    /// drain to zero without any request traffic.
    pub fn snapshot(&self, now_nanos: u64) -> Vec<WindowSnapshot> {
        self.wheels
            .iter()
            .zip(WINDOWS.iter())
            .map(|(wheel, (label, secs))| {
                wheel
                    .lock()
                    .expect("window wheel poisoned")
                    .snapshot(now_nanos, label, *secs)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn ok(nanos: u64) -> WindowEvent {
        WindowEvent {
            total_nanos: nanos,
            error: false,
            cache_hit: Some(false),
            slo_breach: false,
        }
    }

    #[test]
    fn events_land_in_every_window() {
        let w = RollingWindows::new();
        w.record(0, &ok(100));
        w.record(SEC / 2, &ok(100));
        let snaps = w.snapshot(SEC / 2);
        assert_eq!(snaps.len(), 3);
        for s in &snaps {
            assert_eq!(s.count, 2, "{}", s.label);
            assert_eq!(s.errors, 0);
            assert_eq!(s.cache_misses, 2);
        }
        assert_eq!(snaps[0].label, "1m");
        assert_eq!(snaps[0].window_secs, 60);
        assert!((snaps[0].qps() - 2.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn one_minute_window_forgets_after_sixty_seconds() {
        let w = RollingWindows::new();
        w.record(0, &ok(100));
        // 61 s later the 1m wheel has fully rotated past the event; the
        // 5m and 15m wheels still remember it.
        let snaps = w.snapshot(61 * SEC);
        assert_eq!(snaps[0].count, 0, "1m must forget");
        assert_eq!(snaps[1].count, 1, "5m must remember");
        assert_eq!(snaps[2].count, 1, "15m must remember");
        let snaps = w.snapshot(901 * SEC);
        assert_eq!(snaps[2].count, 0, "15m forgets after 15 minutes");
    }

    #[test]
    fn partial_expiry_drops_only_stale_buckets() {
        let w = RollingWindows::new();
        w.record(0, &ok(100)); // bucket [0, 1s)
        w.record(30 * SEC, &ok(100)); // bucket [30s, 31s)
                                      // At t=45s both are inside the 1m window.
        assert_eq!(w.snapshot(45 * SEC)[0].count, 2);
        // At t=75s the first event (bucket 0..1s) is > 60s old in wheel
        // terms (head at 75s, tail at 16s) — only the second survives.
        assert_eq!(w.snapshot(75 * SEC)[0].count, 1);
    }

    #[test]
    fn error_and_cache_ratios() {
        let w = RollingWindows::new();
        w.record(0, &ok(100));
        w.record(
            0,
            &WindowEvent {
                total_nanos: 100,
                error: true,
                cache_hit: None,
                slo_breach: false,
            },
        );
        w.record(
            0,
            &WindowEvent {
                total_nanos: 100,
                error: false,
                cache_hit: Some(true),
                slo_breach: false,
            },
        );
        let s = w.snapshot(0)[0];
        assert_eq!(s.count, 3);
        assert_eq!(s.errors, 1);
        assert!((s.error_ratio() - 1.0 / 3.0).abs() < 1e-12);
        // One hit, one miss consulted the cache.
        assert!((s.cache_hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_track_the_window_not_the_lifetime() {
        let w = RollingWindows::new();
        for _ in 0..9 {
            w.record(0, &ok(1));
        }
        w.record(0, &ok(1000));
        let s = w.snapshot(0)[0];
        assert_eq!(s.p50_nanos, 1);
        assert_eq!(s.p99_nanos, 1023); // bucket upper bound of [512, 1024)
                                       // After the window rotates past the samples, quantiles reset.
        let s = w.snapshot(120 * SEC)[0];
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_nanos, 0);
    }

    #[test]
    fn long_idle_gap_clears_without_looping() {
        let w = RollingWindows::new();
        w.record(0, &ok(1));
        // A week of idle time must neither loop for millions of steps
        // nor leave stale counts behind.
        w.record(7 * 24 * 3600 * SEC, &ok(1));
        let s = w.snapshot(7 * 24 * 3600 * SEC)[0];
        assert_eq!(s.count, 1);
    }

    #[test]
    fn empty_window_ratios_are_zero() {
        let w = RollingWindows::new();
        let s = w.snapshot(0)[0];
        assert_eq!(s.qps(), 0.0);
        assert_eq!(s.error_ratio(), 0.0);
        assert_eq!(s.cache_hit_ratio(), 0.0);
        assert_eq!(s.slo_breach_ratio(), 0.0);
        assert_eq!(s.slo_burn_rate(), 0.0);
    }

    fn breach(nanos: u64) -> WindowEvent {
        WindowEvent {
            slo_breach: true,
            ..ok(nanos)
        }
    }

    /// Satellite: burn-rate math is exact — driven by a manual clock
    /// across a full window rotation, the ratio is a precise rational at
    /// every step, never an approximation.
    #[test]
    fn burn_rate_is_exact_across_window_rotation() {
        let w = RollingWindows::new();
        // 96 good + 4 breaching requests in the first second: breach
        // ratio exactly 4/100, burn rate exactly 4.0 against the 1%
        // budget — in every window.
        for _ in 0..96 {
            w.record(0, &ok(1_000));
        }
        for _ in 0..4 {
            w.record(0, &breach(2_000_000_000));
        }
        for s in w.snapshot(0) {
            assert_eq!(s.slo_breaches, 4, "{}", s.label);
            assert_eq!(s.slo_breach_ratio(), 0.04, "{}", s.label);
            assert_eq!(s.slo_burn_rate(), 4.0, "{}", s.label);
        }
        // 30 s later, 100 clean requests land. The 1m window now holds
        // 200 requests / 4 breaches: ratio exactly 0.02, burn 2.0.
        for _ in 0..100 {
            w.record(30 * SEC, &ok(1_000));
        }
        let s = w.snapshot(30 * SEC)[0];
        assert_eq!((s.count, s.slo_breaches), (200, 4));
        assert_eq!(s.slo_burn_rate(), 2.0);
        // At t=75 s the 1m wheel has rotated the breaching bucket out:
        // only the clean t=30s bucket survives, burn drops to exactly 0;
        // the 5m window still remembers all 4 breaches out of 200.
        let snaps = w.snapshot(75 * SEC);
        assert_eq!((snaps[0].count, snaps[0].slo_breaches), (100, 0));
        assert_eq!(snaps[0].slo_burn_rate(), 0.0);
        assert_eq!((snaps[1].count, snaps[1].slo_breaches), (200, 4));
        assert_eq!(snaps[1].slo_burn_rate(), 2.0);
        // After the 5m window rotates fully, it forgets too.
        let snaps = w.snapshot(331 * SEC);
        assert_eq!(snaps[1].slo_breaches, 0);
        assert_eq!(snaps[1].slo_burn_rate(), 0.0);
    }
}
