//! Injectable monotonic time.
//!
//! The rolling-window aggregates ([`crate::window`]) and the request
//! ring ([`crate::ring`]) stamp events against a [`Clock`] rather than
//! reading `Instant::now()` directly, for one reason: tests must be able
//! to *drive* time. A wall-clock-driven window can only be tested with
//! sleeps (slow, flaky); a [`ManualClock`] lets a test push 61 seconds
//! forward in one call and assert the 1-minute wheel rotated.
//!
//! Production code uses [`MonotonicClock`], a thin wrapper over
//! [`Instant`] measuring nanoseconds since the clock's construction.
//! Nothing here reads the wall clock (`SystemTime`), so nothing in the
//! observability plane depends on the host's date — the determinism
//! contract the test suite relies on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A source of monotonic nanoseconds. Epoch is implementation-defined
/// (construction time for [`MonotonicClock`], zero for [`ManualClock`]);
/// only differences are meaningful.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Nanoseconds since the clock's epoch. Never decreases.
    fn now_nanos(&self) -> u64;
}

/// A shared clock handle, cheap to clone across worker threads.
pub type SharedClock = Arc<dyn Clock>;

/// The production clock: nanoseconds since construction, via [`Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A test clock: time moves only when the test says so.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at 0 ns.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A shared clock frozen at `nanos`.
    pub fn starting_at(nanos: u64) -> Arc<ManualClock> {
        let c = ManualClock::new();
        c.nanos.store(nanos, Ordering::Relaxed);
        Arc::new(c)
    }

    /// Advances time by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Advances time by whole seconds (window tests think in seconds).
    pub fn advance_secs(&self, secs: u64) {
        self.advance(secs * 1_000_000_000);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_demand() {
        let c = ManualClock::starting_at(5);
        assert_eq!(c.now_nanos(), 5);
        assert_eq!(c.now_nanos(), 5);
        c.advance(10);
        assert_eq!(c.now_nanos(), 15);
        c.advance_secs(2);
        assert_eq!(c.now_nanos(), 2_000_000_015);
    }

    #[test]
    fn clocks_are_object_safe_and_shareable() {
        let shared: SharedClock = Arc::new(ManualClock::new());
        let clone = Arc::clone(&shared);
        std::thread::spawn(move || clone.now_nanos())
            .join()
            .unwrap();
        assert_eq!(shared.now_nanos(), 0);
    }
}
