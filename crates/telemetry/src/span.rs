//! Hierarchical span tracing.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s; the guard records a
//! [`SpanRecord`] into a sharded buffer when dropped. Parent attribution
//! uses a thread-local stack of open spans (spans are strictly nested per
//! thread by guard drop order), and each recording thread is tagged with
//! a small stable id so traces from the `suggest_many` worker pool land
//! in separate Chrome-trace lanes.
//!
//! **Disabled-path contract:** a disabled tracer performs *no* work —
//! [`Tracer::span`] is a branch on an `Option` that returns an inert
//! guard without reading the clock, touching thread-local state, or
//! allocating. The detail closure of [`Tracer::span_with`] is never
//! evaluated when disabled.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json_escape;

/// Number of finished-span buffers; pushes shard by recording thread so
/// pool workers rarely contend on the same mutex.
const SHARDS: usize = 16;

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id within the tracer (allocation order, starts at 1).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name (e.g. `"walk_accumulate"`).
    pub name: &'static str,
    /// Optional dynamic detail (query text, partition index, …).
    pub detail: Option<String>,
    /// Start offset from the tracer epoch, in nanoseconds.
    pub start_nanos: u64,
    /// Span duration in nanoseconds (≥ 1 by construction).
    pub dur_nanos: u64,
    /// Small stable id of the recording thread (1, 2, …).
    pub thread: u64,
}

#[derive(Debug)]
struct TracerInner {
    /// Distinguishes tracers on the shared thread-local span stack.
    tracer_id: u64,
    epoch: Instant,
    next_span: AtomicU64,
    shards: Vec<Mutex<Vec<SpanRecord>>>,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small per-thread id, assigned on first span recorded by a thread.
    static THREAD_TAG: Cell<u64> = const { Cell::new(0) };
    /// Stack of open spans on this thread as `(tracer_id, span_id)`.
    /// Keyed by tracer so two live tracers interleaving on one thread
    /// cannot adopt each other's spans as parents.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

fn thread_tag() -> u64 {
    THREAD_TAG.with(|t| {
        let mut tag = t.get();
        if tag == 0 {
            tag = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
            t.set(tag);
        }
        tag
    })
}

/// Hierarchical span tracer; cheap to clone (shared buffers) and safe to
/// use from many threads at once.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that records nothing, for free.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer that records spans.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                tracer_id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            })),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; it is recorded when the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.start(name, None)
    }

    /// Like [`Tracer::span`] with a lazily-built detail string. The
    /// closure only runs when the tracer is enabled, so dynamic labels
    /// cost nothing on the disabled path.
    pub fn span_with(&self, name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard<'_> {
        if self.inner.is_some() {
            self.start(name, Some(detail()))
        } else {
            SpanGuard { active: None }
        }
    }

    /// The id of the innermost open span *on the calling thread*, if any.
    /// Capture this before handing work to another thread and pass it to
    /// [`Tracer::span_under`] there, so a request's spans form one tree
    /// even across the worker pool (the stack itself is thread-local and
    /// cannot see across threads).
    pub fn current_span_id(&self) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|&&(t, _)| t == inner.tracer_id)
                .map(|&(_, id)| id)
        })
    }

    /// Opens a span with an explicit parent (typically a span id captured
    /// on another thread via [`Tracer::current_span_id`]). The span still
    /// joins this thread's stack, so spans nested under it chain normally.
    pub fn span_under(&self, name: &'static str, parent: Option<u64>) -> SpanGuard<'_> {
        self.start_under(name, None, parent)
    }

    /// [`Tracer::span_under`] with a lazily-built detail string.
    pub fn span_under_with(
        &self,
        name: &'static str,
        parent: Option<u64>,
        detail: impl FnOnce() -> String,
    ) -> SpanGuard<'_> {
        if self.inner.is_some() {
            self.start_under(name, Some(detail()), parent)
        } else {
            SpanGuard { active: None }
        }
    }

    fn start(&self, name: &'static str, detail: Option<String>) -> SpanGuard<'_> {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s
                .iter()
                .rev()
                .find(|&&(t, _)| t == inner.tracer_id)
                .map(|&(_, id)| id);
            s.push((inner.tracer_id, id));
            parent
        });
        SpanGuard {
            active: Some(ActiveSpan {
                inner,
                id,
                parent,
                name,
                detail,
                start: Instant::now(),
            }),
        }
    }

    fn start_under(
        &self,
        name: &'static str,
        detail: Option<String>,
        explicit_parent: Option<u64>,
    ) -> SpanGuard<'_> {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        // The explicit parent wins over whatever is open on this thread
        // (usually nothing — the point is adoption across threads), but
        // the new span still joins the local stack so its own children
        // parent under it.
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = explicit_parent.or_else(|| {
                s.iter()
                    .rev()
                    .find(|&&(t, _)| t == inner.tracer_id)
                    .map(|&(_, id)| id)
            });
            s.push((inner.tracer_id, id));
            parent
        });
        SpanGuard {
            active: Some(ActiveSpan {
                inner,
                id,
                parent,
                name,
                detail,
                start: Instant::now(),
            }),
        }
    }

    /// Snapshot of all finished spans, in start order.
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out: Vec<SpanRecord> = Vec::new();
        for shard in &inner.shards {
            out.extend(shard.lock().expect("span shard poisoned").iter().cloned());
        }
        out.sort_by_key(|s| (s.start_nanos, s.id));
        out
    }

    /// Exports all finished spans as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` envelope with complete — `"ph": "X"` —
    /// events), loadable in `chrome://tracing` and Perfetto. Timestamps
    /// and durations are microseconds with nanosecond precision.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.finished_spans();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"xclean\",\"ph\":\"X\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\
                 \"args\":{{\"span_id\":{}",
                json_escape(s.name),
                s.start_nanos as f64 / 1e3,
                s.dur_nanos as f64 / 1e3,
                s.thread,
                s.id,
            ));
            if let Some(p) = s.parent {
                out.push_str(&format!(",\"parent_id\":{p}"));
            }
            if let Some(d) = &s.detail {
                out.push_str(&format!(",\"detail\":\"{}\"", json_escape(d)));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[derive(Debug)]
struct ActiveSpan<'a> {
    inner: &'a Arc<TracerInner>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    detail: Option<String>,
    start: Instant,
}

/// RAII guard for an open span; records the span when dropped. Inert (all
/// methods and the drop are no-ops) when the tracer is disabled.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_nanos = (active.start.elapsed().as_nanos() as u64).max(1);
        let start_nanos = (active.start - active.inner.epoch).as_nanos() as u64;
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in strict nesting order per thread, so our entry
            // is the deepest one belonging to this tracer.
            if let Some(pos) = s
                .iter()
                .rposition(|&(t, id)| t == active.inner.tracer_id && id == active.id)
            {
                s.remove(pos);
            }
        });
        let tag = thread_tag();
        let shard = &active.inner.shards[(tag as usize) % SHARDS];
        shard.lock().expect("span shard poisoned").push(SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            detail: active.detail,
            start_nanos,
            dur_nanos,
            thread: tag,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        {
            let _a = t.span("a");
            let _b = t.span_with("b", || panic!("detail closure must not run"));
        }
        assert!(t.finished_spans().is_empty());
        assert_eq!(t.chrome_trace_json(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let t = Tracer::enabled();
        {
            let _root = t.span("root");
            {
                let _child = t.span("child");
                let _grandchild = t.span("grandchild");
            }
            let _sibling = t.span("sibling");
        }
        let spans = t.finished_spans();
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let root = by_name("root");
        assert_eq!(root.parent, None);
        assert_eq!(by_name("child").parent, Some(root.id));
        assert_eq!(by_name("grandchild").parent, Some(by_name("child").id));
        assert_eq!(by_name("sibling").parent, Some(root.id));
        for s in &spans {
            assert!(s.dur_nanos >= 1);
        }
        // Parent spans start no later and end no earlier than children.
        let child = by_name("child");
        assert!(root.start_nanos <= child.start_nanos);
        assert!(root.start_nanos + root.dur_nanos >= child.start_nanos + child.dur_nanos);
    }

    #[test]
    fn two_tracers_do_not_adopt_each_others_spans() {
        let a = Tracer::enabled();
        let b = Tracer::enabled();
        {
            let _outer = a.span("outer_a");
            let _inner = b.span("inner_b"); // must NOT parent under outer_a
            let _leaf = a.span("leaf_a"); // must parent under outer_a
        }
        assert_eq!(b.finished_spans()[0].parent, None);
        let spans = a.finished_spans();
        let outer = spans.iter().find(|s| s.name == "outer_a").unwrap();
        let leaf = spans.iter().find(|s| s.name == "leaf_a").unwrap();
        assert_eq!(leaf.parent, Some(outer.id));
    }

    #[test]
    fn threads_get_distinct_lanes() {
        let t = Tracer::enabled();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _s = t.span("worker");
                });
            }
        });
        let spans = t.finished_spans();
        assert_eq!(spans.len(), 2);
        assert_ne!(spans[0].thread, spans[1].thread);
        // Cross-thread spans have no parent (the stack is thread-local).
        assert!(spans.iter().all(|s| s.parent.is_none()));
    }

    #[test]
    fn span_under_adopts_cross_thread_parent() {
        let t = Tracer::enabled();
        {
            let _req = t.span("request");
            let parent = t.current_span_id();
            assert!(parent.is_some());
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _w = t.span_under("partition", parent);
                    let _leaf = t.span("partition_leaf"); // chains under partition
                });
            });
        }
        let spans = t.finished_spans();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let req = by_name("request");
        let part = by_name("partition");
        assert_eq!(part.parent, Some(req.id), "cross-thread adoption");
        assert_eq!(by_name("partition_leaf").parent, Some(part.id));
        assert_ne!(req.thread, part.thread);
    }

    #[test]
    fn span_under_on_disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert_eq!(t.current_span_id(), None);
        {
            let _s = t.span_under("x", Some(7));
            let _d = t.span_under_with("y", Some(7), || panic!("must not run"));
        }
        assert!(t.finished_spans().is_empty());
    }

    #[test]
    fn chrome_trace_shape() {
        let t = Tracer::enabled();
        {
            let _s = t.span_with("suggest", || "helth \"insurance\"".into());
        }
        let json = t.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"suggest\""));
        assert!(json.contains("helth \\\"insurance\\\""));
        assert!(json.contains("\"pid\":1"));
    }
}
