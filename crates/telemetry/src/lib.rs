//! # xclean-telemetry
//!
//! Dependency-free observability for the XClean engine (DESIGN.md §9):
//!
//! - [`Tracer`] — a lightweight hierarchical span tracer. Spans carry a
//!   name, optional detail, start/duration in nanoseconds relative to the
//!   tracer's epoch, a parent span, and the recording thread. A disabled
//!   tracer is a zero-allocation no-op: [`Tracer::span`] returns an inert
//!   guard without touching thread-locals or the clock.
//! - [`MetricsRegistry`] — named monotonic [`Counter`]s and log-bucketed
//!   latency [`Histogram`]s (p50/p95/p99). All recording is lock-free
//!   (atomic adds); the registry lock is only taken on first registration
//!   of a name, so a pool of worker threads never serialises on it.
//! - Exporters — [`Tracer::chrome_trace_json`] emits Chrome trace-event
//!   JSON (loadable in `chrome://tracing` / Perfetto);
//!   [`MetricsRegistry::metrics_text`] emits the Prometheus text format
//!   and [`MetricsRegistry::metrics_json`] a JSON snapshot.
//!
//! The crate is intentionally free of workspace and external
//! dependencies so every layer (index, engine, CLI, benches) can depend
//! on it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod log;
pub mod metrics;
pub mod ring;
pub mod runtime;
pub mod span;
pub mod window;

pub use clock::{Clock, ManualClock, MonotonicClock, SharedClock};
pub use log::{set_global, Level, LevelSpec, LogFormat, Logger};
pub use metrics::{
    escape_label_value, render_exemplar_histogram, render_labeled_histogram_seconds, Counter,
    Exemplar, ExemplarStore, Histogram, HistogramSummary, MetricsRegistry,
};
pub use ring::{RequestRecord, RequestRing, ShardAttribution};
pub use runtime::{FlightRecorder, RuntimeEvent, RuntimeEventKind, RuntimeStats};
pub use span::{SpanGuard, SpanRecord, Tracer};
pub use window::{RollingWindows, WindowEvent, WindowSnapshot, SLO_ERROR_BUDGET};

/// Canonical metric names used by the engine, shared between the
/// recording side (`crates/xclean`) and consumers (CLI, tests) so the two
/// can never drift apart.
pub mod names {
    /// Queries answered over the engine lifetime.
    pub const QUERIES: &str = "xclean_queries_total";
    /// Suggestions returned (post top-k truncation).
    pub const SUGGESTIONS: &str = "xclean_suggestions_total";
    /// Gating subtrees processed.
    pub const SUBTREES: &str = "xclean_subtrees_total";
    /// Candidate queries enumerated (with multiplicity).
    pub const CANDIDATES: &str = "xclean_candidates_enumerated_total";
    /// Distinct result-type computations.
    pub const RESULT_TYPES: &str = "xclean_result_type_computations_total";
    /// Entity score contributions accumulated.
    pub const ENTITIES: &str = "xclean_entities_scored_total";
    /// Postings consumed via `next()` across all merged lists.
    pub const POSTINGS_READ: &str = "xclean_postings_read_total";
    /// Postings jumped by `skip_to` across all merged lists.
    pub const POSTINGS_SKIPPED: &str = "xclean_postings_skipped_total";
    /// `skip_to` invocations.
    pub const SKIP_CALLS: &str = "xclean_skip_calls_total";
    /// Accumulators evicted by γ-pruning.
    pub const EVICTIONS: &str = "xclean_pruning_evictions_total";
    /// Contributions rejected after eviction.
    pub const REJECTED: &str = "xclean_pruning_rejected_total";
    /// Latency histogram: variant-slot construction.
    pub const STAGE_SLOT: &str = "xclean_stage_slot_nanos";
    /// Latency histogram: walk + accumulate phase.
    pub const STAGE_WALK: &str = "xclean_stage_walk_nanos";
    /// Latency histogram: finalise + rank phase.
    pub const STAGE_RANK: &str = "xclean_stage_rank_nanos";
    /// Latency histogram: one scoring partition's walk (per worker).
    pub const STAGE_PARTITION: &str = "xclean_stage_partition_walk_nanos";
    /// Latency histogram: whole `suggest` call.
    pub const STAGE_TOTAL: &str = "xclean_stage_total_nanos";
    /// HTTP requests served by the suggestion server.
    pub const SERVER_REQUESTS: &str = "xclean_server_requests_total";
    /// HTTP responses with a 4xx/5xx status.
    pub const SERVER_ERRORS: &str = "xclean_server_errors_total";
    /// Response-cache lookups that hit.
    pub const CACHE_HITS: &str = "xclean_server_cache_hits_total";
    /// Response-cache lookups that missed.
    pub const CACHE_MISSES: &str = "xclean_server_cache_misses_total";
    /// Response-cache entries evicted by LRU pressure.
    pub const CACHE_EVICTIONS: &str = "xclean_server_cache_evictions_total";
    /// Latency histogram: whole HTTP request (parse → response written).
    pub const SERVER_REQUEST: &str = "xclean_server_request_nanos";
    /// TCP connections accepted by the suggestion server.
    pub const CONNECTIONS_OPENED: &str = "xclean_server_connections_opened_total";
    /// TCP connections the suggestion server finished with.
    pub const CONNECTIONS_CLOSED: &str = "xclean_server_connections_closed_total";
    /// Gauge (rendered by the server, not registry-backed): connections
    /// currently open, i.e. opened minus closed.
    pub const CONNECTIONS_OPEN: &str = "xclean_server_connections_open";
    /// Requests served on an already-used keep-alive connection (every
    /// request on a connection beyond its first).
    pub const KEEPALIVE_REUSE: &str = "xclean_server_keepalive_reuse_total";
    /// Latency histogram: snapshot open (read/map bytes into a slab).
    pub const SNAPSHOT_OPEN: &str = "xclean_snapshot_open_nanos";
    /// Latency histogram: snapshot validation (structure + checksum).
    pub const SNAPSHOT_VALIDATE: &str = "xclean_snapshot_validate_nanos";
    /// Latency histogram: first `suggest` call after open (cold caches,
    /// lazy slab decodes still pending).
    pub const FIRST_QUERY: &str = "xclean_first_query_nanos";
    /// Rolling-window gauge: requests completed inside the window
    /// (labelled `window="1m"|"5m"|"15m"`).
    pub const WINDOW_REQUESTS: &str = "xclean_server_window_requests";
    /// Rolling-window gauge: 4xx/5xx responses inside the window.
    pub const WINDOW_ERRORS: &str = "xclean_server_window_errors";
    /// Rolling-window gauge: requests per second over the window.
    pub const WINDOW_QPS: &str = "xclean_server_window_qps";
    /// Rolling-window gauge: error share of requests in the window.
    pub const WINDOW_ERROR_RATIO: &str = "xclean_server_window_error_ratio";
    /// Rolling-window gauge: cache hit share in the window.
    pub const WINDOW_CACHE_HIT_RATIO: &str = "xclean_server_window_cache_hit_ratio";
    /// Rolling-window gauge: request latency quantile (labelled
    /// `window` and `quantile`).
    pub const WINDOW_LATENCY: &str = "xclean_server_window_latency_nanos";
    /// Runtime histogram: event-loop busy time between `epoll_wait`
    /// calls, in fractional seconds.
    pub const LOOP_LAG_SECONDS: &str = "xclean_loop_lag_seconds";
    /// Runtime histogram: job enqueue → worker-pickup wait, in
    /// fractional seconds.
    pub const QUEUE_WAIT_SECONDS: &str = "xclean_queue_wait_seconds";
    /// Runtime histogram: readiness events returned per `epoll_wait`.
    pub const EVENTS_PER_WAKE: &str = "xclean_events_per_wake";
    /// Runtime gauge: per-worker busy share of wall time (labelled
    /// `worker`).
    pub const WORKER_UTILIZATION: &str = "xclean_worker_utilization";
    /// Per-corpus counter (labelled `corpus`): requests routed to the
    /// corpus, including cache hits.
    pub const CORPUS_REQUESTS: &str = "xclean_server_corpus_requests_total";
    /// Per-corpus counter (labelled `corpus`): error responses while
    /// serving the corpus.
    pub const CORPUS_ERRORS: &str = "xclean_server_corpus_errors_total";
    /// Per-corpus counter (labelled `corpus`): individual queries scored
    /// or answered from cache (a batch POST counts each query).
    pub const CORPUS_QUERIES: &str = "xclean_server_corpus_queries_total";
    /// Per-corpus counter (labelled `corpus`): response-cache hits.
    pub const CORPUS_CACHE_HITS: &str = "xclean_server_corpus_cache_hits_total";
    /// Per-corpus counter (labelled `corpus`): response-cache misses.
    pub const CORPUS_CACHE_MISSES: &str = "xclean_server_corpus_cache_misses_total";
    /// Per-corpus gauge (labelled `corpus`): live response-cache entries.
    pub const CORPUS_CACHE_ENTRIES: &str = "xclean_server_corpus_cache_entries";
    /// Per-corpus gauge (labelled `corpus`): shard count of the backing
    /// engine (1 for an unsharded snapshot).
    pub const CORPUS_SHARDS: &str = "xclean_server_corpus_shards";
    /// Per-shard histogram (labelled `corpus` and `shard`): scatter-phase
    /// latency of one shard's Algorithm-1 run, in fractional seconds.
    pub const SHARD_SCATTER_SECONDS: &str = "xclean_shard_scatter_seconds";
    /// Per-corpus gauge (labelled `corpus`): straggler skew of the most
    /// recent sharded request — max shard scatter nanos over the median.
    pub const SHARD_SKEW: &str = "xclean_server_shard_skew";
    /// Per-corpus gauge (labelled `corpus` and `window`): SLO burn rate —
    /// the window's latency-breach share over the 1% error budget.
    pub const CORPUS_BURN_RATE: &str = "xclean_server_corpus_slo_burn_rate";
    /// Per-corpus gauge (labelled `corpus` and `window`): requests that
    /// breached the latency SLO inside the rolling window.
    pub const CORPUS_SLO_BREACHES: &str = "xclean_server_corpus_slo_breaches";
    /// Latency-exemplar histogram: the server request histogram in
    /// seconds, bucket lines annotated with the most recent X-Request-Id
    /// that landed in each bucket.
    pub const LATENCY_EXEMPLARS: &str = "xclean_server_latency_exemplar_seconds";

    /// One-line `# HELP` text for a metric name; a generic fallback for
    /// names registered outside this canonical list (tests, ad hoc).
    pub fn help_for(name: &str) -> &'static str {
        match name {
            n if n == QUERIES => "Queries answered over the engine lifetime.",
            n if n == SUGGESTIONS => "Suggestions returned (post top-k truncation).",
            n if n == SUBTREES => "Gating subtrees processed.",
            n if n == CANDIDATES => "Candidate queries enumerated (with multiplicity).",
            n if n == RESULT_TYPES => "Distinct result-type computations.",
            n if n == ENTITIES => "Entity score contributions accumulated.",
            n if n == POSTINGS_READ => "Postings consumed via next() across all merged lists.",
            n if n == POSTINGS_SKIPPED => "Postings jumped by skip_to across all merged lists.",
            n if n == SKIP_CALLS => "skip_to invocations.",
            n if n == EVICTIONS => "Accumulators evicted by gamma-pruning.",
            n if n == REJECTED => "Contributions rejected after eviction.",
            n if n == STAGE_SLOT => "Variant-slot construction latency in nanoseconds.",
            n if n == STAGE_WALK => "Walk + accumulate phase latency in nanoseconds.",
            n if n == STAGE_RANK => "Finalise + rank phase latency in nanoseconds.",
            n if n == STAGE_PARTITION => {
                "Per-worker scoring partition walk latency in nanoseconds."
            }
            n if n == STAGE_TOTAL => "Whole suggest call latency in nanoseconds.",
            n if n == SERVER_REQUESTS => "HTTP requests served by the suggestion server.",
            n if n == SERVER_ERRORS => "HTTP responses with a 4xx/5xx status.",
            n if n == CACHE_HITS => "Response-cache lookups that hit.",
            n if n == CACHE_MISSES => "Response-cache lookups that missed.",
            n if n == CACHE_EVICTIONS => "Response-cache entries evicted by LRU pressure.",
            n if n == SERVER_REQUEST => "Whole HTTP request latency in nanoseconds.",
            n if n == CONNECTIONS_OPENED => "TCP connections accepted by the server.",
            n if n == CONNECTIONS_CLOSED => "TCP connections the server finished with.",
            n if n == CONNECTIONS_OPEN => "Connections currently open.",
            n if n == KEEPALIVE_REUSE => {
                "Requests served on an already-used keep-alive connection."
            }
            n if n == SNAPSHOT_OPEN => "Snapshot open latency in nanoseconds.",
            n if n == SNAPSHOT_VALIDATE => "Snapshot validation latency in nanoseconds.",
            n if n == FIRST_QUERY => "First suggest call after snapshot open, in nanoseconds.",
            n if n == WINDOW_REQUESTS => "Requests completed inside the rolling window.",
            n if n == WINDOW_ERRORS => "Error responses inside the rolling window.",
            n if n == WINDOW_QPS => "Requests per second over the rolling window.",
            n if n == WINDOW_ERROR_RATIO => "Error share of requests in the rolling window.",
            n if n == WINDOW_CACHE_HIT_RATIO => "Cache hit share in the rolling window.",
            n if n == WINDOW_LATENCY => "Request latency quantile over the rolling window.",
            n if n == LOOP_LAG_SECONDS => {
                "Event-loop busy time between epoll_wait calls, in seconds."
            }
            n if n == QUEUE_WAIT_SECONDS => "Job enqueue to worker-pickup wait, in seconds.",
            n if n == EVENTS_PER_WAKE => "Readiness events returned per epoll_wait.",
            n if n == WORKER_UTILIZATION => "Per-worker busy share of wall time.",
            n if n == CORPUS_REQUESTS => "Requests routed to the corpus, cache hits included.",
            n if n == CORPUS_ERRORS => "Error responses while serving the corpus.",
            n if n == CORPUS_QUERIES => "Individual queries answered for the corpus.",
            n if n == CORPUS_CACHE_HITS => "Response-cache hits for the corpus.",
            n if n == CORPUS_CACHE_MISSES => "Response-cache misses for the corpus.",
            n if n == CORPUS_CACHE_ENTRIES => "Live response-cache entries for the corpus.",
            n if n == CORPUS_SHARDS => "Shard count of the corpus engine (1 = unsharded).",
            n if n == SHARD_SCATTER_SECONDS => {
                "Per-shard scatter-phase latency in seconds, labelled corpus and shard."
            }
            n if n == SHARD_SKEW => {
                "Straggler skew of the latest sharded request: max/median shard scatter nanos."
            }
            n if n == CORPUS_BURN_RATE => {
                "SLO burn rate per corpus and window: breach share over the 1% error budget."
            }
            n if n == CORPUS_SLO_BREACHES => {
                "Latency-SLO breaches per corpus inside the rolling window."
            }
            n if n == LATENCY_EXEMPLARS => {
                "Request latency in seconds with per-bucket trace-ID exemplars."
            }
            _ => "XClean metric.",
        }
    }
}

/// The telemetry bundle an engine carries: a span tracer (disabled by
/// default) plus a metrics registry (always live — recording is a handful
/// of atomic adds per query).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    tracer: Tracer,
    metrics: MetricsRegistry,
}

impl Telemetry {
    /// Telemetry with tracing disabled (the default): spans are no-ops,
    /// metrics still aggregate.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// Telemetry with span tracing enabled.
    pub fn with_tracing() -> Self {
        Telemetry {
            tracer: Tracer::enabled(),
            metrics: MetricsRegistry::default(),
        }
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

/// Escapes a string for embedding in a JSON string literal (shared by the
/// exporters; names and details are engine-controlled but query text may
/// carry anything).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_telemetry_is_disabled() {
        let t = Telemetry::default();
        assert!(!t.tracer().is_enabled());
        {
            let _g = t.tracer().span("noop");
        }
        assert!(t.tracer().finished_spans().is_empty());
    }

    #[test]
    fn with_tracing_records() {
        let t = Telemetry::with_tracing();
        assert!(t.tracer().is_enabled());
        {
            let _g = t.tracer().span("root");
        }
        assert_eq!(t.tracer().finished_spans().len(), 1);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
