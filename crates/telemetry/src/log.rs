//! Dependency-free leveled structured logging.
//!
//! Every binary in the workspace used to write ad-hoc `eprintln!` lines;
//! this module gives them one shared format instead. A [`Logger`] is
//!
//! - **leveled** — [`Level::Error`] through [`Level::Trace`], with a
//!   per-target filter spec like `"info,server=debug"` (default level
//!   plus per-target overrides, parsed by [`LevelSpec::parse`]);
//! - **structured** — every line carries a timestamp, level, target,
//!   message, and arbitrary key=value fields, rendered either as logfmt
//!   (`ts=1.234 level=info target=server msg="..." key=value`) or as
//!   JSON lines (one object per line);
//! - **testable** — the clock and the sink are injected, so tests pin
//!   timestamps with a [`ManualClock`] and capture output in a buffer.
//!   Nothing here sleeps or reads the wall clock.
//!
//! Binaries use the process-global logger (installed once with
//! [`set_global`], defaulting to logfmt at `info` on stderr) through the
//! [`log_error!`](crate::log_error) … [`log_trace!`](crate::log_trace)
//! macros:
//!
//! ```
//! use xclean_telemetry::{log_info, log_warn};
//! log_info!("server", "listening", addr = "127.0.0.1:8080", threads = 4);
//! log_warn!("loadgen", format!("wave {} straggled", 3));
//! ```

use std::io::Write;
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::{MonotonicClock, SharedClock};
use crate::json_escape;

/// Log severity, most severe first. Filtering keeps a record when its
/// level is *at most* the configured level (`Error` always passes a
/// non-off filter; `Trace` only at the most verbose setting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed; someone should look.
    Error,
    /// Something surprising that the process survived.
    Warn,
    /// Normal operational landmarks (startup, shutdown, progress).
    Info,
    /// Detail useful when debugging a specific subsystem.
    Debug,
    /// Firehose detail (per-iteration, per-event).
    Trace,
}

impl Level {
    /// The lowercase name used in log lines and filter specs.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name (case-insensitive). `None` for unknown names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A level filter: a default level plus per-target overrides, parsed
/// from a spec like `"info,server=debug,loadgen=trace"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSpec {
    default: Level,
    targets: Vec<(String, Level)>,
}

impl Default for LevelSpec {
    fn default() -> Self {
        LevelSpec {
            default: Level::Info,
            targets: Vec::new(),
        }
    }
}

impl LevelSpec {
    /// A spec with one uniform level and no per-target overrides.
    pub fn uniform(level: Level) -> Self {
        LevelSpec {
            default: level,
            targets: Vec::new(),
        }
    }

    /// Parses `"<level>"` or `"<level>,target=level,…"` (either part
    /// optional, so `"server=debug"` keeps the `info` default). Errors
    /// name the offending fragment.
    pub fn parse(spec: &str) -> Result<LevelSpec, String> {
        let mut out = LevelSpec::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                None => {
                    out.default =
                        Level::parse(part).ok_or_else(|| format!("unknown log level '{part}'"))?;
                }
                Some((target, level)) => {
                    if target.trim().is_empty() {
                        return Err(format!("empty target in '{part}'"));
                    }
                    let level = Level::parse(level.trim())
                        .ok_or_else(|| format!("unknown log level in '{part}'"))?;
                    out.targets.push((target.trim().to_string(), level));
                }
            }
        }
        Ok(out)
    }

    /// The effective level for `target`: the longest matching override
    /// (exact name or a prefix of a `::`-qualified target), else the
    /// default.
    pub fn level_for(&self, target: &str) -> Level {
        let mut best: Option<(usize, Level)> = None;
        for (t, level) in &self.targets {
            let matches = target == t
                || target
                    .strip_prefix(t.as_str())
                    .is_some_and(|rest| rest.starts_with("::"));
            if matches && best.is_none_or(|(len, _)| t.len() > len) {
                best = Some((t.len(), *level));
            }
        }
        best.map_or(self.default, |(_, l)| l)
    }

    /// Whether a record at `level` for `target` passes the filter.
    pub fn allows(&self, target: &str, level: Level) -> bool {
        level <= self.level_for(target)
    }
}

/// Output line format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// `ts=1.234567 level=info target=server msg="..." key=value`
    Logfmt,
    /// One JSON object per line with `ts`, `level`, `target`, `msg`, and
    /// the fields flattened in.
    Json,
}

/// Quotes a logfmt value when needed (spaces, quotes, `=`, or empties);
/// bare otherwise.
fn logfmt_value(v: &str) -> String {
    if !v.is_empty()
        && v.chars()
            .all(|c| !c.is_whitespace() && c != '"' && c != '=' && c != '\\')
    {
        v.to_string()
    } else {
        format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""))
    }
}

/// A leveled structured logger writing one line per record to a sink.
pub struct Logger {
    spec: LevelSpec,
    format: LogFormat,
    clock: SharedClock,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("spec", &self.spec)
            .field("format", &self.format)
            .finish_non_exhaustive()
    }
}

impl Logger {
    /// A logger with an injected clock and sink (the test constructor).
    pub fn new(
        spec: LevelSpec,
        format: LogFormat,
        clock: SharedClock,
        sink: Box<dyn Write + Send>,
    ) -> Logger {
        Logger {
            spec,
            format,
            clock,
            sink: Mutex::new(sink),
        }
    }

    /// A production logger: monotonic clock, writing to stderr.
    pub fn stderr(spec: LevelSpec, format: LogFormat) -> Logger {
        Logger::new(
            spec,
            format,
            Arc::new(MonotonicClock::new()),
            Box::new(std::io::stderr()),
        )
    }

    /// Whether a record at `level` for `target` would be written.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        self.spec.allows(target, level)
    }

    /// Writes one record (if the filter allows it). `fields` are
    /// appended key=value pairs; keys are caller-controlled identifiers,
    /// values arbitrary text.
    pub fn log(&self, level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
        if !self.enabled(target, level) {
            return;
        }
        let ts = self.clock.now_nanos() as f64 / 1e9;
        let mut line = String::with_capacity(64 + msg.len());
        match self.format {
            LogFormat::Logfmt => {
                line.push_str(&format!(
                    "ts={ts:.6} level={level} target={} msg={}",
                    logfmt_value(target),
                    logfmt_value(msg)
                ));
                for (k, v) in fields {
                    line.push_str(&format!(" {k}={}", logfmt_value(v)));
                }
            }
            LogFormat::Json => {
                line.push_str(&format!(
                    "{{\"ts\":{ts:.6},\"level\":\"{level}\",\"target\":\"{}\",\"msg\":\"{}\"",
                    json_escape(target),
                    json_escape(msg)
                ));
                for (k, v) in fields {
                    line.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
                }
                line.push('}');
            }
        }
        line.push('\n');
        let mut sink = self.sink.lock().expect("log sink poisoned");
        // A broken sink must never take the process down with it.
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.flush();
    }
}

static GLOBAL: OnceLock<Logger> = OnceLock::new();

/// Installs the process-global logger. Returns `false` (and drops the
/// argument) if one was already installed — first writer wins, so `serve`
/// can configure logging before any subsystem emits a line.
pub fn set_global(logger: Logger) -> bool {
    GLOBAL.set(logger).is_ok()
}

/// The process-global logger; installs the default (logfmt, `info`,
/// stderr) on first use if none was set.
pub fn global() -> &'static Logger {
    GLOBAL.get_or_init(|| Logger::stderr(LevelSpec::default(), LogFormat::Logfmt))
}

/// Logs through the global logger at an explicit level:
/// `log_event!(Level::Info, "target", "message", key = value, …)`.
/// Field values are rendered with `Display`. Prefer the per-level
/// shorthands ([`log_info!`](crate::log_info) etc.).
#[macro_export]
macro_rules! log_event {
    ($level:expr, $target:expr, $msg:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        let level = $level;
        let target = $target;
        let logger = $crate::log::global();
        if logger.enabled(target, level) {
            logger.log(
                level,
                target,
                ::std::convert::AsRef::<str>::as_ref(&$msg),
                &[$((stringify!($k), ::std::format!("{}", $v))),*],
            );
        }
    }};
}

/// `log_error!("target", "message", key = value, …)` — see [`log_event!`](crate::log_event).
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::log::Level::Error, $target, $($rest)+)
    };
}

/// `log_warn!("target", "message", key = value, …)` — see [`log_event!`](crate::log_event).
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::log::Level::Warn, $target, $($rest)+)
    };
}

/// `log_info!("target", "message", key = value, …)` — see [`log_event!`](crate::log_event).
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::log::Level::Info, $target, $($rest)+)
    };
}

/// `log_debug!("target", "message", key = value, …)` — see [`log_event!`](crate::log_event).
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::log::Level::Debug, $target, $($rest)+)
    };
}

/// `log_trace!("target", "message", key = value, …)` — see [`log_event!`](crate::log_event).
#[macro_export]
macro_rules! log_trace {
    ($target:expr, $($rest:tt)+) => {
        $crate::log_event!($crate::log::Level::Trace, $target, $($rest)+)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    /// A capturing sink shared between the logger and the test.
    #[derive(Clone, Default)]
    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedSink {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    fn logger(spec: &str, format: LogFormat, nanos: u64) -> (Logger, SharedSink) {
        let sink = SharedSink::default();
        let logger = Logger::new(
            LevelSpec::parse(spec).unwrap(),
            format,
            ManualClock::starting_at(nanos),
            Box::new(sink.clone()),
        );
        (logger, sink)
    }

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert_eq!(Level::Debug.to_string(), "debug");
    }

    #[test]
    fn spec_parses_default_and_overrides() {
        let spec = LevelSpec::parse("warn,server=debug,loadgen=trace").unwrap();
        assert_eq!(spec.level_for("anything"), Level::Warn);
        assert_eq!(spec.level_for("server"), Level::Debug);
        assert_eq!(spec.level_for("server::conn"), Level::Debug);
        assert_eq!(spec.level_for("serverx"), Level::Warn, "no substring match");
        assert_eq!(spec.level_for("loadgen"), Level::Trace);
        assert!(spec.allows("server", Level::Debug));
        assert!(!spec.allows("server", Level::Trace));
        assert!(!spec.allows("other", Level::Info));

        // Overrides alone keep the info default.
        let spec = LevelSpec::parse("server=error").unwrap();
        assert_eq!(spec.level_for("other"), Level::Info);
        assert_eq!(spec.level_for("server"), Level::Error);

        // Longest matching target wins.
        let spec = LevelSpec::parse("server=warn,server::conn=trace").unwrap();
        assert_eq!(spec.level_for("server::conn"), Level::Trace);
        assert_eq!(spec.level_for("server::loop"), Level::Warn);

        assert!(LevelSpec::parse("bogus").is_err());
        assert!(LevelSpec::parse("info,server=bogus").is_err());
        assert!(LevelSpec::parse("=debug").is_err());
        assert_eq!(LevelSpec::parse("").unwrap(), LevelSpec::default());
    }

    #[test]
    fn logfmt_lines_carry_ts_level_target_and_fields() {
        let (logger, sink) = logger("info", LogFormat::Logfmt, 1_500_000);
        logger.log(
            Level::Info,
            "server",
            "listening",
            &[
                ("addr", "127.0.0.1:80".to_string()),
                ("threads", "4".to_string()),
            ],
        );
        assert_eq!(
            sink.text(),
            "ts=0.001500 level=info target=server msg=listening addr=127.0.0.1:80 threads=4\n"
        );
    }

    #[test]
    fn logfmt_quotes_values_with_spaces_and_quotes() {
        let (logger, sink) = logger("info", LogFormat::Logfmt, 0);
        logger.log(
            Level::Warn,
            "bench",
            "wave 3 straggled",
            &[("q", "helth \"cover\"".to_string())],
        );
        assert_eq!(
            sink.text(),
            "ts=0.000000 level=warn target=bench msg=\"wave 3 straggled\" \
             q=\"helth \\\"cover\\\"\"\n"
        );
    }

    #[test]
    fn json_lines_are_parseable_objects() {
        let (logger, sink) = logger("info", LogFormat::Json, 2_000_000_000);
        logger.log(
            Level::Error,
            "eval",
            "sweep \"beta\" failed",
            &[("beta", "0.5".to_string())],
        );
        assert_eq!(
            sink.text(),
            "{\"ts\":2.000000,\"level\":\"error\",\"target\":\"eval\",\
             \"msg\":\"sweep \\\"beta\\\" failed\",\"beta\":\"0.5\"}\n"
        );
    }

    #[test]
    fn filtered_records_write_nothing() {
        let (logger, sink) = logger("warn,server=info", LogFormat::Logfmt, 0);
        logger.log(Level::Info, "bench", "dropped", &[]);
        logger.log(Level::Debug, "server", "dropped too", &[]);
        logger.log(Level::Info, "server", "kept", &[]);
        let text = sink.text();
        assert!(!text.contains("dropped"), "{text}");
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(text.contains("msg=kept"), "{text}");
    }

    #[test]
    fn macros_route_through_the_global_logger() {
        // The global logger defaults to info on stderr; this only checks
        // the macros expand and filter without panicking.
        crate::log_info!("telemetry::test", "macro smoke", n = 1, label = "x");
        crate::log_trace!("telemetry::test", "filtered at default level");
        crate::log_event!(Level::Warn, "telemetry::test", format!("msg {}", 2));
        assert!(!global().enabled("telemetry::test", Level::Trace));
    }
}
