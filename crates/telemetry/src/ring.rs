//! A bounded, lock-striped ring buffer of completed request records.
//!
//! The serving layer pushes one [`RequestRecord`] per finished HTTP
//! request — success or error — and `GET /debug/requests` reads the most
//! recent ones back. Design constraints:
//!
//! - **Bounded**: the ring holds at most `capacity` records; old records
//!   are overwritten, never accumulated. Memory is O(capacity) for the
//!   process lifetime.
//! - **Lock-striped**: records land in `stripes` independent
//!   `Mutex<VecDeque>` shards selected by a global sequence number, so
//!   concurrent workers rarely contend on the same lock and never
//!   serialise on one. Reads (rare, debug-only) lock each stripe in turn
//!   and merge by sequence number.
//! - **Record-only**: nothing on the suggestion path reads the ring; a
//!   push is the only interaction. The bit-identity contract of the
//!   engine is therefore untouchable from here by construction.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json_escape;

/// Per-shard scatter attribution for one sharded suggestion request.
///
/// The sharded engine's scatter phase runs Algorithm 1 once per shard;
/// each run's cost and yield is captured here so a single slow-log line
/// (or `/debug/requests` record) names the straggler shard directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardAttribution {
    /// Shard index (document order, 0-based).
    pub shard: u32,
    /// Nanoseconds the shard's scatter (walk + accumulate) took.
    pub scatter_nanos: u64,
    /// Gated subtrees the shard's anchor walk visited.
    pub subtrees: u64,
    /// Candidate queries the shard enumerated.
    pub candidates: u64,
    /// Entity score contributions the shard computed.
    pub entities: u64,
    /// Contribution-log entries the shard handed to the gather merge.
    pub contributions: u64,
}

impl ShardAttribution {
    /// The attribution as one compact JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shard\":{},\"scatter_nanos\":{},\"subtrees\":{},\"candidates\":{},\
             \"entities\":{},\"contributions\":{}}}",
            self.shard,
            self.scatter_nanos,
            self.subtrees,
            self.candidates,
            self.entities,
            self.contributions
        )
    }
}

/// One completed request, as the observability plane remembers it.
#[derive(Debug, Clone, Default)]
pub struct RequestRecord {
    /// Monotonic completion sequence number (assigned by the ring).
    pub seq: u64,
    /// The request's trace ID (inbound `X-Request-Id` or generated).
    pub trace_id: String,
    /// Coarse route tag (`suggest`, `suggest_batch`, `metrics`, …).
    pub route: &'static str,
    /// Normalized query text (empty for non-suggest routes).
    pub query: String,
    /// HTTP status of the response.
    pub status: u16,
    /// Response-cache outcome, when the route consults the cache.
    pub cache_hit: Option<bool>,
    /// Variant-slot construction nanos (0 on cache hits / error paths).
    pub slot_nanos: u64,
    /// Walk + accumulate nanos.
    pub walk_nanos: u64,
    /// Finalise + rank nanos.
    pub rank_nanos: u64,
    /// Whole-request nanos (parse → response rendered), clock-derived.
    pub total_nanos: u64,
    /// Candidate queries enumerated.
    pub candidates: u64,
    /// Entity score contributions accumulated.
    pub entities: u64,
    /// Suggestions returned.
    pub suggestions: u64,
    /// Arrival time in clock nanos (see [`crate::clock::Clock`]).
    pub arrived_nanos: u64,
    /// Resolved corpus name (empty for non-tenant routes and for
    /// requests that never matched a catalog entry).
    pub corpus: String,
    /// Per-shard scatter attribution (empty for unsharded engines and
    /// non-suggest routes).
    pub shards: Vec<ShardAttribution>,
}

impl RequestRecord {
    /// Whether the response status counts as an error.
    pub fn is_error(&self) -> bool {
        self.status >= 400
    }

    /// The record as one compact JSON object — the `/debug/requests`
    /// item shape and the slow-query-log line shape (one per line).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160 + self.query.len());
        out.push_str(&format!(
            "{{\"seq\":{},\"trace_id\":\"{}\",\"route\":\"{}\",\"query\":\"{}\",\"status\":{}",
            self.seq,
            json_escape(&self.trace_id),
            json_escape(self.route),
            json_escape(&self.query),
            self.status
        ));
        match self.cache_hit {
            Some(hit) => out.push_str(&format!(
                ",\"cache\":\"{}\"",
                if hit { "hit" } else { "miss" }
            )),
            None => out.push_str(",\"cache\":null"),
        }
        out.push_str(&format!(
            ",\"stages\":{{\"slot_nanos\":{},\"walk_nanos\":{},\"rank_nanos\":{}}},\
             \"total_nanos\":{},\"candidates\":{},\"entities\":{},\"suggestions\":{},\
             \"arrived_nanos\":{}",
            self.slot_nanos,
            self.walk_nanos,
            self.rank_nanos,
            self.total_nanos,
            self.candidates,
            self.entities,
            self.suggestions,
            self.arrived_nanos
        ));
        out.push_str(&format!(",\"corpus\":\"{}\"", json_escape(&self.corpus)));
        out.push_str(",\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Bounded lock-striped ring of [`RequestRecord`]s.
#[derive(Debug)]
pub struct RequestRing {
    stripes: Vec<Mutex<VecDeque<RequestRecord>>>,
    per_stripe: usize,
    next_seq: AtomicU64,
}

impl RequestRing {
    /// A ring retaining the most recent ~`capacity` records across
    /// `stripes` shards (both clamped to ≥ 1; per-stripe capacity is
    /// rounded up, so effective capacity is `per_stripe * stripes`).
    pub fn new(capacity: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        let per_stripe = capacity.max(1).div_ceil(stripes);
        RequestRing {
            stripes: (0..stripes)
                .map(|_| Mutex::new(VecDeque::with_capacity(per_stripe)))
                .collect(),
            per_stripe,
            next_seq: AtomicU64::new(1),
        }
    }

    /// Total records the ring can hold.
    pub fn capacity(&self) -> usize {
        self.per_stripe * self.stripes.len()
    }

    /// Records one completed request; assigns and returns its sequence
    /// number. Evicts the oldest record in the chosen stripe when full.
    pub fn push(&self, mut record: RequestRecord) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        let stripe = &self.stripes[(seq as usize) % self.stripes.len()];
        let mut q = stripe.lock().expect("ring stripe poisoned");
        if q.len() == self.per_stripe {
            q.pop_front();
        }
        q.push_back(record);
        seq
    }

    /// Records pushed over the ring's lifetime (≥ `len()`).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed) - 1
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("ring stripe poisoned").len())
            .sum()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `n` most recent records, newest first.
    pub fn recent(&self, n: usize) -> Vec<RequestRecord> {
        let mut all: Vec<RequestRecord> = Vec::new();
        for stripe in &self.stripes {
            all.extend(stripe.lock().expect("ring stripe poisoned").iter().cloned());
        }
        all.sort_by_key(|r| std::cmp::Reverse(r.seq));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(trace: &str, total: u64) -> RequestRecord {
        RequestRecord {
            trace_id: trace.to_string(),
            route: "suggest",
            query: "helth insurance".to_string(),
            status: 200,
            cache_hit: Some(false),
            slot_nanos: 10,
            walk_nanos: 20,
            rank_nanos: 5,
            total_nanos: total,
            candidates: 3,
            entities: 7,
            suggestions: 2,
            ..Default::default()
        }
    }

    #[test]
    fn push_assigns_increasing_seq_and_recent_is_newest_first() {
        let ring = RequestRing::new(8, 2);
        for i in 0..5 {
            assert_eq!(ring.push(record(&format!("t{i}"), i)), i + 1);
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.total_recorded(), 5);
        let recent = ring.recent(3);
        let traces: Vec<&str> = recent.iter().map(|r| r.trace_id.as_str()).collect();
        assert_eq!(traces, ["t4", "t3", "t2"]);
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let ring = RequestRing::new(4, 2);
        assert_eq!(ring.capacity(), 4);
        for i in 0..100 {
            ring.push(record(&format!("t{i}"), i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total_recorded(), 100);
        // The survivors are the 4 newest (stripes interleave, so exactly
        // the last 2 of each parity class).
        let seqs: Vec<u64> = ring.recent(10).iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [100, 99, 98, 97]);
    }

    #[test]
    fn concurrent_pushes_never_lose_count() {
        let ring = RequestRing::new(1024, 8);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..100 {
                        ring.push(record(&format!("w{t}-{i}"), i));
                    }
                });
            }
        });
        assert_eq!(ring.total_recorded(), 800);
        assert_eq!(ring.len(), 800);
        // Sequence numbers are unique.
        let mut seqs: Vec<u64> = ring.recent(800).iter().map(|r| r.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 800);
    }

    #[test]
    fn json_shape_escapes_and_orders_fields() {
        let mut r = record("abc\"123", 1234);
        r.query = "a\nb".to_string();
        r.seq = 9;
        let json = r.to_json();
        assert!(
            json.starts_with("{\"seq\":9,\"trace_id\":\"abc\\\"123\""),
            "{json}"
        );
        assert!(json.contains("\"query\":\"a\\nb\""), "{json}");
        assert!(json.contains("\"cache\":\"miss\""), "{json}");
        assert!(
            json.contains("\"stages\":{\"slot_nanos\":10,\"walk_nanos\":20,\"rank_nanos\":5}"),
            "{json}"
        );
        assert!(json.contains("\"total_nanos\":1234"), "{json}");
        let mut none = record("t", 1);
        none.cache_hit = None;
        assert!(none.to_json().contains("\"cache\":null"));
    }

    #[test]
    fn json_carries_corpus_and_shard_attribution() {
        let mut r = record("t", 1);
        assert!(
            r.to_json().ends_with("\"corpus\":\"\",\"shards\":[]}"),
            "{}",
            r.to_json()
        );
        r.corpus = "dblp".to_string();
        r.shards = vec![
            ShardAttribution {
                shard: 0,
                scatter_nanos: 500,
                subtrees: 3,
                candidates: 7,
                entities: 11,
                contributions: 5,
            },
            ShardAttribution {
                shard: 1,
                scatter_nanos: 900,
                ..Default::default()
            },
        ];
        let json = r.to_json();
        assert!(json.contains("\"corpus\":\"dblp\""), "{json}");
        assert!(
            json.contains(
                "\"shards\":[{\"shard\":0,\"scatter_nanos\":500,\"subtrees\":3,\
                 \"candidates\":7,\"entities\":11,\"contributions\":5},"
            ),
            "{json}"
        );
        assert!(
            json.contains("{\"shard\":1,\"scatter_nanos\":900"),
            "{json}"
        );
        assert!(json.ends_with("]}"), "{json}");
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        let ring = RequestRing::new(0, 0);
        assert_eq!(ring.capacity(), 1);
        ring.push(record("a", 1));
        ring.push(record("b", 2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.recent(5)[0].trace_id, "b");
    }
}
