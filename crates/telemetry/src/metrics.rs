//! Engine-lifetime metrics: named counters and log-bucketed histograms.
//!
//! Recording is lock-free: counters are single `AtomicU64`s and a
//! histogram is a fixed array of atomic buckets, so the `suggest_many`
//! worker pool aggregates into one registry without serialising. The
//! registry's interior lock is taken only when a *name* is first
//! registered; hot paths hold pre-resolved `Arc` handles.
//!
//! **Bucket scheme** (documented in DESIGN.md §9): bucket `i ≥ 1` covers
//! values in `[2^(i-1), 2^i)`; bucket 0 holds the value 0. Quantiles are
//! answered with the *upper bound* of the bucket where the cumulative
//! count crosses the rank, i.e. an over-estimate by at most 2× — the
//! right trade-off for latency monitoring where order of magnitude and
//! tail direction matter more than the third significant digit.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::json_escape;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 plus one per power of two up to
/// `2^63`. Shared with the rolling-window wheels ([`crate::window`]), so
/// windowed quantiles and lifetime quantiles use one bucket scheme.
pub(crate) const HIST_BUCKETS: usize = 64;

/// The bucket index holding `value` (0 → 0; v ≥ 1 → ⌊log₂ v⌋ + 1).
pub(crate) fn log2_bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

/// The inclusive upper bound of bucket `i` (what quantiles report).
pub(crate) fn log2_bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        i if i >= HIST_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// The `q`-quantile over a plain (non-atomic) bucket array: the upper
/// bound of the bucket where the cumulative count crosses the rank.
pub(crate) fn log2_quantile(counts: &[u64; HIST_BUCKETS], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return log2_bucket_upper(i);
        }
    }
    log2_bucket_upper(HIST_BUCKETS - 1)
}

/// A log₂-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Median upper bound.
    pub p50: u64,
    /// 95th-percentile upper bound.
    pub p95: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        log2_bucket_of(value)
    }

    /// The inclusive upper bound of a bucket (what quantiles report).
    fn bucket_upper(i: usize) -> u64 {
        log2_bucket_upper(i)
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the upper bound of the bucket
    /// holding the rank-`⌈q·count⌉` sample; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(HIST_BUCKETS - 1)
    }

    /// A plain snapshot of the per-bucket counts (for renderers outside
    /// this module that need the raw log₂ buckets, e.g. the seconds-unit
    /// runtime histograms in [`crate::runtime`]).
    pub(crate) fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Count/sum/p50/p95/p99 snapshot.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Escapes a string for use as a Prometheus label *value*: backslash,
/// double-quote, and newline must be backslash-escaped per the text
/// exposition format. Everything else passes through verbatim.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One histogram-bucket exemplar: the most recent trace ID whose sample
/// landed in the bucket, plus the sample itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Trace / request ID of the most recent sample in the bucket.
    pub trace_id: String,
    /// That sample's value in nanoseconds.
    pub value_nanos: u64,
}

/// Per-bucket exemplar retention for one log₂ histogram (DESIGN.md §17).
///
/// Retention rule: each bucket keeps exactly the **most recent** trace
/// ID that landed in it — last write wins, no sampling, no decay. That
/// makes every populated latency bucket on `/metrics` a direct link to a
/// replayable request in `/debug/requests`, and bounds memory at one
/// small string per bucket. Recording takes one short per-bucket mutex
/// off the engine's hot paths (once per completed request).
#[derive(Debug)]
pub struct ExemplarStore {
    slots: [Mutex<Option<Exemplar>>; HIST_BUCKETS],
}

impl Default for ExemplarStore {
    fn default() -> Self {
        ExemplarStore {
            slots: std::array::from_fn(|_| Mutex::new(None)),
        }
    }
}

impl ExemplarStore {
    /// A store with every bucket empty.
    pub fn new() -> Self {
        ExemplarStore::default()
    }

    /// Remembers `trace_id` as the newest exemplar of the bucket holding
    /// `value_nanos`.
    pub fn record(&self, value_nanos: u64, trace_id: &str) {
        let slot = &self.slots[log2_bucket_of(value_nanos)];
        *slot.lock().expect("exemplar slot poisoned") = Some(Exemplar {
            trace_id: trace_id.to_string(),
            value_nanos,
        });
    }

    /// Occupied buckets as `(bucket upper bound in nanos, exemplar)`,
    /// ascending by bound.
    pub fn snapshot(&self) -> Vec<(u64, Exemplar)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.lock()
                    .expect("exemplar slot poisoned")
                    .clone()
                    .map(|e| (log2_bucket_upper(i), e))
            })
            .collect()
    }
}

/// A finite log₂ bucket upper bound rendered as fractional seconds
/// (plain `f64` display — never scientific notation — so `le` values
/// stay parseable Prometheus floats).
fn seconds_of(nanos: u64) -> String {
    format!("{}", nanos as f64 / 1e9)
}

/// Renders one labelled histogram's series lines in seconds units:
/// cumulative `name_bucket{labels,le="…"}` up to the highest occupied
/// bucket, a final `+Inf` carrying the total, then `_sum`/`_count` with
/// the same label set. The caller emits the family's `# HELP`/`# TYPE`
/// pair once (several label sets share one family).
pub fn render_labeled_histogram_seconds(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let counts = h.bucket_counts();
    let max_used = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate().take(max_used + 1) {
        cum += c;
        if i == HIST_BUCKETS - 1 {
            break; // the final bucket is only ever shown as +Inf
        }
        out.push_str(&format!(
            "{name}_bucket{{{labels},le=\"{}\"}} {cum}\n",
            seconds_of(log2_bucket_upper(i))
        ));
    }
    let total: u64 = counts.iter().sum();
    out.push_str(&format!(
        "{name}_bucket{{{labels},le=\"+Inf\"}} {total}\n\
         {name}_sum{{{labels}}} {}\n{name}_count{{{labels}}} {total}\n",
        seconds_of(h.sum())
    ));
}

/// Renders `h` as a seconds-unit histogram family whose bucket lines
/// carry OpenMetrics-style exemplars (` # {trace_id="…"} value`) from
/// `store` where a bucket has one. Emits its own `# HELP`/`# TYPE` pair;
/// conformant without exemplar-aware parsers (the suffix is a comment to
/// classic Prometheus text-format readers).
pub fn render_exemplar_histogram(
    out: &mut String,
    name: &str,
    h: &Histogram,
    store: &ExemplarStore,
) {
    out.push_str(&format!(
        "# HELP {name} {}\n# TYPE {name} histogram\n",
        crate::names::help_for(name)
    ));
    let counts = h.bucket_counts();
    let exemplars: BTreeMap<usize, Exemplar> = store
        .snapshot()
        .into_iter()
        .map(|(upper, e)| (log2_bucket_of(e.value_nanos), (upper, e)))
        .map(|(i, (_upper, e))| (i, e))
        .collect();
    let max_used = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate().take(max_used + 1) {
        cum += c;
        if i == HIST_BUCKETS - 1 {
            break;
        }
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cum}",
            seconds_of(log2_bucket_upper(i))
        ));
        if let Some(e) = exemplars.get(&i) {
            out.push_str(&format!(
                " # {{trace_id=\"{}\"}} {}",
                escape_label_value(&e.trace_id),
                seconds_of(e.value_nanos)
            ));
        }
        out.push('\n');
    }
    let total: u64 = counts.iter().sum();
    out.push_str(&format!(
        "{name}_bucket{{le=\"+Inf\"}} {total}\n{name}_sum {}\n{name}_count {total}\n",
        seconds_of(h.sum())
    ));
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

/// Shared registry of named counters and histograms; cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// Returns (registering on first use) the counter named `name`.
    /// Callers on hot paths should resolve once and keep the `Arc`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some(c) = self.inner.counters.read().expect("lock").get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.inner
                .counters
                .write()
                .expect("lock")
                .entry(name)
                .or_default(),
        )
    }

    /// Returns (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        if let Some(h) = self.inner.histograms.read().expect("lock").get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.inner
                .histograms
                .write()
                .expect("lock")
                .entry(name)
                .or_default(),
        )
    }

    /// Value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner
            .counters
            .read()
            .expect("lock")
            .get(name)
            .map(|c| c.get())
    }

    /// Summary of a histogram, if registered.
    pub fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        self.inner
            .histograms
            .read()
            .expect("lock")
            .get(name)
            .map(|h| h.summary())
    }

    /// Prometheus text-format snapshot: counters as `counter` metrics,
    /// histograms in native `histogram` exposition — cumulative
    /// `_bucket{le="…"}` series ending at `le="+Inf"`, plus `_sum` and
    /// `_count`. Series are emitted in sorted name order (the registries
    /// are `BTreeMap`s) so scrapes are deterministic, and every metric is
    /// preceded by paired `# HELP` / `# TYPE` lines.
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.inner.counters.read().expect("lock").iter() {
            out.push_str(&format!(
                "# HELP {name} {}\n# TYPE {name} counter\n{name} {}\n",
                crate::names::help_for(name),
                c.get()
            ));
        }
        for (name, h) in self.inner.histograms.read().expect("lock").iter() {
            out.push_str(&format!(
                "# HELP {name} {}\n# TYPE {name} histogram\n",
                crate::names::help_for(name)
            ));
            let counts: Vec<u64> = h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            // Emit cumulative buckets up to the highest occupied one;
            // `+Inf` (required last bucket) always carries the total.
            let max_used = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
            let mut cum = 0u64;
            for (i, &c) in counts.iter().enumerate().take(max_used + 1) {
                cum += c;
                if i == HIST_BUCKETS - 1 {
                    break; // the final bucket is only ever shown as +Inf
                }
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cum}\n",
                    log2_bucket_upper(i)
                ));
            }
            let total: u64 = counts.iter().sum();
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {total}\n{name}_sum {}\n{name}_count {total}\n",
                h.sum()
            ));
        }
        out
    }

    /// JSON snapshot:
    /// `{"counters": {name: value, …},
    ///   "histograms": {name: {count, sum, p50, p95, p99}, …}}`.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, c)) in self.inner.counters.read().expect("lock").iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), c.get()));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self
            .inner
            .histograms
            .read()
            .expect("lock")
            .iter()
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let s = h.summary();
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                json_escape(name),
                s.count,
                s.sum,
                s.p50,
                s.p95,
                s.p99
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let r = MetricsRegistry::default();
        let a = r.counter("xclean_test_total");
        let b = r.counter("xclean_test_total");
        a.add(3);
        b.inc();
        assert_eq!(r.counter_value("xclean_test_total"), Some(4));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn counters_are_thread_safe() {
        let r = MetricsRegistry::default();
        let c = r.counter("xclean_mt_total");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(10), 1023);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::default();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        // 9 of 10 samples in bucket 1 (upper bound 1): p50 = 1, p90 = 1;
        // the straggler pushes p99 into 1000's bucket [512, 1024) → 1023.
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.9), 1);
        assert_eq!(h.quantile(0.99), 1023);
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 1009);
        assert_eq!(s.p50, 1);
        assert_eq!(s.p99, 1023);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn prometheus_text_format() {
        let r = MetricsRegistry::default();
        r.counter("xclean_queries_total").add(2);
        r.histogram("xclean_stage_walk_nanos").record(700);
        let text = r.metrics_text();
        assert!(text.contains("# TYPE xclean_queries_total counter"));
        assert!(text.contains("xclean_queries_total 2"));
        assert!(text.contains("# TYPE xclean_stage_walk_nanos histogram"));
        // 700 lands in bucket [512, 1024): cumulative count 1 at le=1023.
        assert!(text.contains("xclean_stage_walk_nanos_bucket{le=\"1023\"} 1"));
        assert!(text.contains("xclean_stage_walk_nanos_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("xclean_stage_walk_nanos_sum 700"));
        assert!(text.contains("xclean_stage_walk_nanos_count 1"));
    }

    /// Every `# HELP` line is immediately followed by the matching
    /// `# TYPE` line, and every series line belongs to the most recent
    /// `# TYPE` metric family.
    #[test]
    fn prometheus_help_type_pairing() {
        let r = MetricsRegistry::default();
        r.counter("xclean_queries_total").inc();
        r.histogram("xclean_stage_walk_nanos").record(7);
        let text = r.metrics_text();
        let lines: Vec<&str> = text.lines().collect();
        let mut current_family: Option<&str> = None;
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(
                    rest.len() > name.len() + 1,
                    "HELP line must carry text: {line}"
                );
                let next = lines.get(i + 1).unwrap_or(&"");
                assert!(
                    next.starts_with(&format!("# TYPE {name} ")),
                    "HELP for {name} not followed by its TYPE: {next}"
                );
                current_family = Some(name);
            } else if !line.starts_with('#') && !line.is_empty() {
                let family = current_family.expect("series before any TYPE");
                let series = line.split(['{', ' ']).next().unwrap();
                assert!(
                    series == family
                        || series
                            .strip_prefix(family)
                            .is_some_and(|s| matches!(s, "_bucket" | "_sum" | "_count")),
                    "series {series} outside family {family}"
                );
            }
        }
    }

    /// Series come out in deterministic sorted order: two snapshots of
    /// the same registry are byte-identical, and counter names appear in
    /// lexicographic order.
    #[test]
    fn prometheus_sorted_deterministic_order() {
        let r = MetricsRegistry::default();
        // Register deliberately out of order.
        r.counter("xclean_zz_total").inc();
        r.counter("xclean_aa_total").inc();
        r.histogram("xclean_mm_nanos").record(1);
        let a = r.metrics_text();
        let b = r.metrics_text();
        assert_eq!(a, b);
        let aa = a.find("xclean_aa_total").unwrap();
        let zz = a.find("xclean_zz_total").unwrap();
        assert!(aa < zz, "counters must be sorted by name");
    }

    /// Histogram `_bucket` series are cumulative (non-decreasing in `le`
    /// order), end at `le="+Inf"`, and `+Inf` equals `_count`.
    #[test]
    fn prometheus_histogram_bucket_consistency() {
        let r = MetricsRegistry::default();
        let h = r.histogram("xclean_stage_walk_nanos");
        for v in [0u64, 1, 3, 700, 700, 5000] {
            h.record(v);
        }
        let text = r.metrics_text();
        let mut prev_cum = 0u64;
        let mut inf_seen = false;
        let mut bucket_lines = 0;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("xclean_stage_walk_nanos_bucket{le=\"") else {
                continue;
            };
            assert!(!inf_seen, "+Inf must be the last bucket");
            bucket_lines += 1;
            let (le, count) = rest.split_once("\"} ").unwrap();
            let cum: u64 = count.parse().unwrap();
            assert!(cum >= prev_cum, "buckets must be cumulative: {line}");
            prev_cum = cum;
            if le == "+Inf" {
                inf_seen = true;
                assert_eq!(cum, 6, "+Inf bucket must hold every sample");
            } else {
                le.parse::<u64>().expect("finite le must be an integer");
            }
        }
        assert!(inf_seen, "histogram exposition must end at +Inf");
        assert!(bucket_lines >= 2);
        assert!(text.contains("xclean_stage_walk_nanos_count 6"));
        // 0 + 1 + 3 + 700 + 700 + 5000
        assert!(text.contains("xclean_stage_walk_nanos_sum 6404"));
    }

    #[test]
    fn label_value_escaping() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("q=\"x\\y\nz\""), "q=\\\"x\\\\y\\nz\\\"");
    }

    #[test]
    fn exemplar_store_keeps_the_most_recent_trace_per_bucket() {
        let store = ExemplarStore::new();
        assert!(store.snapshot().is_empty());
        store.record(700, "t-old");
        store.record(900, "t-new"); // same [512, 1024) bucket: overwrites
        store.record(5, "t-small");
        let snap = store.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, 7, "bucket upper of 5 is 7");
        assert_eq!(snap[0].1.trace_id, "t-small");
        assert_eq!(snap[1].0, 1023);
        assert_eq!(snap[1].1.trace_id, "t-new");
        assert_eq!(snap[1].1.value_nanos, 900);
    }

    #[test]
    fn exemplar_histogram_renders_openmetrics_suffixes() {
        let h = Histogram::default();
        let store = ExemplarStore::new();
        h.record(700);
        h.record(3);
        store.record(700, "trace-700");
        let mut out = String::new();
        render_exemplar_histogram(&mut out, "xclean_test_exemplars", &h, &store);
        assert!(out.starts_with("# HELP xclean_test_exemplars "), "{out}");
        assert!(
            out.contains("# TYPE xclean_test_exemplars histogram"),
            "{out}"
        );
        // The 700ns bucket line carries its exemplar; the 3ns one has
        // none recorded and stays a plain bucket line.
        assert!(
            out.contains(
                "xclean_test_exemplars_bucket{le=\"0.000001023\"} 2 \
                 # {trace_id=\"trace-700\"} 0.0000007\n"
            ),
            "{out}"
        );
        assert!(
            out.contains("xclean_test_exemplars_bucket{le=\"0.000000003\"} 1\n"),
            "{out}"
        );
        assert!(
            out.contains("xclean_test_exemplars_bucket{le=\"+Inf\"} 2\n"),
            "{out}"
        );
        assert!(out.contains("xclean_test_exemplars_count 2\n"), "{out}");
    }

    #[test]
    fn labeled_histogram_renders_cumulative_seconds_buckets() {
        let h = Histogram::default();
        h.record(700);
        h.record(800);
        let mut out = String::new();
        render_labeled_histogram_seconds(
            &mut out,
            "xclean_shard_scatter_seconds",
            "corpus=\"dblp\",shard=\"1\"",
            &h,
        );
        assert!(
            out.contains(
                "xclean_shard_scatter_seconds_bucket{corpus=\"dblp\",shard=\"1\",le=\"0.000001023\"} 2\n"
            ),
            "{out}"
        );
        assert!(
            out.contains(
                "xclean_shard_scatter_seconds_bucket{corpus=\"dblp\",shard=\"1\",le=\"+Inf\"} 2\n"
            ),
            "{out}"
        );
        assert!(
            out.contains(
                "xclean_shard_scatter_seconds_sum{corpus=\"dblp\",shard=\"1\"} 0.0000015\n"
            ),
            "{out}"
        );
        assert!(
            out.contains("xclean_shard_scatter_seconds_count{corpus=\"dblp\",shard=\"1\"} 2\n"),
            "{out}"
        );
        // An empty histogram still emits its zero bucket, +Inf, sum, count.
        let mut empty = String::new();
        render_labeled_histogram_seconds(
            &mut empty,
            "xclean_shard_scatter_seconds",
            "corpus=\"a\",shard=\"0\"",
            &Histogram::default(),
        );
        assert!(
            empty.contains(
                "xclean_shard_scatter_seconds_bucket{corpus=\"a\",shard=\"0\",le=\"0\"} 0\n"
            ),
            "{empty}"
        );
        assert!(
            empty.contains("xclean_shard_scatter_seconds_count{corpus=\"a\",shard=\"0\"} 0\n"),
            "{empty}"
        );
    }

    #[test]
    fn json_snapshot_shape() {
        let r = MetricsRegistry::default();
        r.counter("xclean_queries_total").inc();
        r.histogram("xclean_stage_rank_nanos").record(5);
        let json = r.metrics_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"xclean_queries_total\":1"));
        assert!(json.contains("\"xclean_stage_rank_nanos\":{\"count\":1,\"sum\":5"));
        assert!(json.contains("\"p99\":"));
    }
}
