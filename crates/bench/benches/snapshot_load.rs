//! Benchmark: snapshot open cost — the v1 rebuild-load path versus the
//! v2 columnar open (owned copy and mmap-backed) on the dblp corpus.
//!
//! v1 loading replays the tree builder and re-interns the vocabulary, so
//! it is O(corpus) work before the first query can run. v2 opening is a
//! validation pass over slab byte-ranges (postings and path statistics
//! decode lazily on first access), so the target is an open that is at
//! least 5× faster than the v1 load on the same corpus.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use xclean_datagen::{generate_dblp, DblpConfig};
use xclean_index::{storage, CorpusIndex, OpenOptions, SlabMode};

/// `XCLEAN_BENCH_TIER=quick` (or legacy `XCLEAN_BENCH_QUICK=1`) shrinks
/// the corpus and sample count so CI can run the bench as a regression
/// smoke in seconds. Gating is shared with the runner via
/// [`xclean_bench::quick_mode`].
fn quick() -> bool {
    xclean_bench::quick_mode()
}

fn bench_snapshot_load(c: &mut Criterion) {
    let corpus = CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: if quick() { 200 } else { 1_000 },
        ..Default::default()
    }));
    let v1_bytes = storage::to_bytes(&corpus);
    let v2_bytes = storage::to_bytes_v2(&corpus);

    let dir = std::env::temp_dir().join("xclean_snapshot_load_bench");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let v1_path = dir.join("dblp.v1.xci");
    let v2_path = dir.join("dblp.v2.xci");
    std::fs::write(&v1_path, &v1_bytes).expect("write v1 snapshot");
    std::fs::write(&v2_path, &v2_bytes).expect("write v2 snapshot");

    let mut group = c.benchmark_group("snapshot_load");
    group.throughput(Throughput::Bytes(v2_bytes.len() as u64));
    group.bench_function("v1_rebuild_load", |b| {
        b.iter(|| black_box(storage::open_file(&v1_path, &OpenOptions::default()).unwrap()))
    });
    group.bench_function("v2_open_owned", |b| {
        b.iter(|| {
            black_box(
                storage::open_file(
                    &v2_path,
                    &OpenOptions {
                        mode: SlabMode::Owned,
                        ..Default::default()
                    },
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("v2_open_mapped", |b| {
        b.iter(|| black_box(storage::open_file(&v2_path, &OpenOptions::default()).unwrap()))
    });
    // An open that defers all decoding would be cheating if first access
    // were then catastrophic: also measure open + touching every posting
    // list (the worst-case cold read, far beyond any single query).
    group.bench_function("v2_open_plus_full_decode", |b| {
        b.iter(|| {
            let (corpus, _) = storage::open_file(&v2_path, &OpenOptions::default()).unwrap();
            let total: usize = corpus.posting_lists().map(|l| l.len()).sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot_load);
criterion_main!(benches);
