//! Benchmark: telemetry overhead on the suggestion hot path.
//!
//! Two engines answer the same workload: tracing disabled (the default —
//! an inert tracer plus a handful of relaxed atomic metric adds per
//! query, which the DESIGN.md §9 overhead contract requires to be
//! negligible) and full span tracing. The spread between the two bars is
//! the opt-in cost of `--trace-out`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xclean::{Telemetry, XCleanConfig, XCleanEngine};
use xclean_datagen::{generate_dblp, make_workload, DblpConfig, Perturbation, WorkloadSpec};

/// `XCLEAN_BENCH_TIER=quick` (or legacy `XCLEAN_BENCH_QUICK=1`) shrinks
/// the corpus, workload, and sample count so CI can run the bench as a
/// regression smoke in seconds. Gating is shared with the runner via
/// [`xclean_bench::quick_mode`].
fn quick() -> bool {
    xclean_bench::quick_mode()
}

fn setup() -> (XCleanEngine, Vec<Vec<String>>) {
    let tree = generate_dblp(&DblpConfig {
        publications: if quick() { 500 } else { 2_000 },
        ..Default::default()
    });
    let engine = XCleanEngine::new(tree, XCleanConfig::default());
    let set = make_workload(
        engine.corpus(),
        &WorkloadSpec {
            n_queries: if quick() { 8 } else { 20 },
            ..WorkloadSpec::dblp(Perturbation::Rand)
        },
    );
    let queries = set.cases.into_iter().map(|c| c.dirty).collect();
    (engine, queries)
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let (base, queries) = setup();
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(if quick() { 3 } else { 10 });
    let variants: [(&str, Telemetry); 2] = [
        ("tracing_off", Telemetry::disabled()),
        ("tracing_on", Telemetry::with_tracing()),
    ];
    for (name, telemetry) in variants {
        let engine = XCleanEngine::from_shared(base.corpus_shared(), base.config().clone())
            .with_telemetry(telemetry);
        group.bench_with_input(BenchmarkId::new("suggest", name), &engine, |b, e| {
            b.iter(|| {
                for q in &queries {
                    black_box(e.suggest_keywords(q));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
