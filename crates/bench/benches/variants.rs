//! Benchmark: FastSS variant generation vs a naïve vocabulary scan
//! (§V-A — the offline deletion-neighbourhood index is what makes
//! `var_ε(q)` cheap at query time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xclean_datagen::{generate_dblp, generate_inex, DblpConfig, InexConfig};
use xclean_fastss::{NaiveVariantFinder, VariantIndex, VariantIndexConfig};
use xclean_index::CorpusIndex;

fn vocabularies() -> Vec<(&'static str, Vec<String>)> {
    let dblp = CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 5_000,
        ..Default::default()
    }));
    let inex = CorpusIndex::build(generate_inex(&InexConfig {
        articles: 500,
        ..Default::default()
    }));
    vec![
        (
            "dblp",
            dblp.vocab().iter_terms().map(str::to_string).collect(),
        ),
        (
            "inex",
            inex.vocab().iter_terms().map(str::to_string).collect(),
        ),
    ]
}

fn bench_variants(c: &mut Criterion) {
    let queries = [
        "databse",
        "kyword",
        "optimizaton",
        "helth",
        "anciet",
        "mountin",
        "religous",
        "architcture",
    ];
    let mut group = c.benchmark_group("variant_generation");
    for (name, vocab) in vocabularies() {
        let idx = VariantIndex::build(&vocab, VariantIndexConfig::default());
        let naive = NaiveVariantFinder::new(&vocab);
        group.bench_with_input(
            BenchmarkId::new("fastss", format!("{name}_{}", vocab.len())),
            &idx,
            |b, idx| {
                b.iter(|| {
                    for q in queries {
                        black_box(idx.query(q));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive_scan", format!("{name}_{}", vocab.len())),
            &naive,
            |b, naive| {
                b.iter(|| {
                    for q in queries {
                        black_box(naive.query(q, 2));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_index_construction(c: &mut Criterion) {
    let (_, vocab) = vocabularies().swap_remove(0);
    c.bench_function("fastss_build_dblp_vocab", |b| {
        b.iter(|| black_box(VariantIndex::build(&vocab, VariantIndexConfig::default())))
    });
}

criterion_group!(benches, bench_variants, bench_index_construction);
criterion_main!(benches);
