//! Benchmark: batched suggestion throughput — `suggest_many` over a
//! workload at 1/2/4/8 worker threads versus a sequential `suggest` loop.
//!
//! The target for the parallel engine is > 1.5× throughput at 4 threads
//! over the sequential loop on the same workload; the printed `elem/s`
//! rates make the ratio directly readable. Note that the ratio is only
//! meaningful on a multi-core host: with a single CPU (check `nproc`)
//! the pool cannot beat the loop, and the interesting number becomes the
//! pool *overhead*, which should stay within a few percent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xclean::{XCleanConfig, XCleanEngine};
use xclean_datagen::{generate_dblp, make_workload, DblpConfig, Perturbation, WorkloadSpec};

/// `XCLEAN_BENCH_TIER=quick` (or legacy `XCLEAN_BENCH_QUICK=1`) shrinks
/// the corpus, workload, and sample count so CI can run the bench as a
/// regression smoke in seconds; numbers from quick mode are comparable to
/// each other but not to full runs. Gating is shared with the runner via
/// [`xclean_bench::quick_mode`].
fn quick() -> bool {
    xclean_bench::quick_mode()
}

struct Setup {
    /// One engine per thread count (the pool size is a config knob), all
    /// sharing a single corpus snapshot.
    engines: Vec<(usize, XCleanEngine)>,
    queries: Vec<Vec<String>>,
}

fn setup() -> Setup {
    let tree = generate_dblp(&DblpConfig {
        publications: if quick() { 800 } else { 5_000 },
        ..Default::default()
    });
    let base = XCleanEngine::new(tree, XCleanConfig::default());
    let set = make_workload(
        base.corpus(),
        &WorkloadSpec {
            n_queries: if quick() { 16 } else { 64 },
            ..WorkloadSpec::dblp(Perturbation::Rand)
        },
    );
    let queries: Vec<Vec<String>> = set.cases.iter().map(|c| c.dirty.clone()).collect();
    let corpus = base.corpus_shared();
    let engines = [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            (
                threads,
                XCleanEngine::from_shared(
                    corpus.clone(),
                    XCleanConfig {
                        num_threads: threads,
                        ..Default::default()
                    },
                ),
            )
        })
        .collect();
    Setup { engines, queries }
}

fn bench_suggest_batch(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("suggest_batch");
    group.sample_size(if quick() { 3 } else { 10 });
    group.throughput(Throughput::Elements(s.queries.len() as u64));

    // Baseline: a plain sequential loop over suggest_keywords.
    group.bench_function("sequential_loop", |b| {
        let (_, engine) = &s.engines[0];
        b.iter(|| {
            for q in &s.queries {
                black_box(engine.suggest_keywords(q));
            }
        })
    });

    for (threads, engine) in &s.engines {
        group.bench_with_input(
            BenchmarkId::new("suggest_many", threads),
            engine,
            |b, engine| {
                b.iter(|| black_box(engine.suggest_many_keywords(&s.queries)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_suggest_batch);
criterion_main!(benches);
