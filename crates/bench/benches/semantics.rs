//! Benchmark: suggestion latency across the three entity semantics
//! (node-type vs SLCA vs ELCA) on the same corpus and workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xclean::{Semantics, XCleanConfig, XCleanEngine};
use xclean_datagen::{generate_dblp, make_workload, DblpConfig, Perturbation, WorkloadSpec};

fn bench_semantics(c: &mut Criterion) {
    let mk_engine = || {
        XCleanEngine::new(
            generate_dblp(&DblpConfig {
                publications: 3_000,
                ..Default::default()
            }),
            XCleanConfig::default(),
        )
    };
    let probe = mk_engine();
    let set = make_workload(
        probe.corpus(),
        &WorkloadSpec {
            n_queries: 15,
            ..WorkloadSpec::dblp(Perturbation::Rand)
        },
    );
    let mut group = c.benchmark_group("semantics");
    group.sample_size(10);
    for semantics in [Semantics::NodeType, Semantics::Slca, Semantics::Elca] {
        let engine = mk_engine().with_semantics(semantics);
        group.bench_with_input(
            BenchmarkId::new(format!("{semantics:?}"), set.cases.len()),
            &set,
            |b, set| {
                b.iter(|| {
                    for case in &set.cases {
                        black_box(engine.suggest_keywords(&case.dirty));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_semantics);
criterion_main!(benches);
