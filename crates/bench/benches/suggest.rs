//! Benchmark: end-to-end suggestion latency — XClean vs PY08 vs the naïve
//! evaluator, per query set (the paper's Table VI / experiment E8), plus
//! the skipping and pruning ablations (E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xclean::{XCleanConfig, XCleanEngine};
use xclean_baselines::{run_naive, Py08};
use xclean_datagen::{
    generate_dblp, make_workload, DblpConfig, Perturbation, QuerySet, WorkloadSpec,
};

struct Setup {
    engine: XCleanEngine,
    py08: Py08,
    sets: Vec<QuerySet>,
}

fn setup() -> Setup {
    let tree = generate_dblp(&DblpConfig {
        publications: 5_000,
        ..Default::default()
    });
    let engine = XCleanEngine::new(tree, XCleanConfig::default());
    let py08 = Py08::build(engine.corpus(), 5.0, 1000);
    let sets = [Perturbation::Clean, Perturbation::Rand, Perturbation::Rule]
        .into_iter()
        .map(|p| {
            make_workload(
                engine.corpus(),
                &WorkloadSpec {
                    n_queries: 20,
                    ..WorkloadSpec::dblp(p)
                },
            )
        })
        .collect();
    Setup { engine, py08, sets }
}

fn bench_suggest(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("suggest_table6");
    group.sample_size(10);
    for set in &s.sets {
        group.bench_with_input(BenchmarkId::new("xclean", &set.name), set, |b, set| {
            b.iter(|| {
                for case in &set.cases {
                    black_box(s.engine.suggest_keywords(&case.dirty));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("py08", &set.name), set, |b, set| {
            b.iter(|| {
                for case in &set.cases {
                    let slots = s.engine.make_slots(&case.dirty);
                    black_box(s.py08.suggest(s.engine.corpus(), &slots, 10));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", &set.name), set, |b, set| {
            let cfg = XCleanConfig {
                gamma: None,
                ..Default::default()
            };
            b.iter(|| {
                for case in &set.cases {
                    let slots = s.engine.make_slots(&case.dirty);
                    black_box(run_naive(s.engine.corpus(), &slots, &cfg));
                }
            })
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let s = setup();
    let set = &s.sets[1]; // RAND
    let mut group = c.benchmark_group("suggest_ablation");
    group.sample_size(10);
    for (label, cfg) in [
        ("skipping_on", XCleanConfig::default()),
        (
            "skipping_off",
            XCleanConfig {
                enable_skipping: false,
                ..Default::default()
            },
        ),
        (
            "pruning_off",
            XCleanConfig {
                gamma: None,
                ..Default::default()
            },
        ),
        (
            "min_depth_1",
            XCleanConfig {
                min_depth: 1,
                ..Default::default()
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new(label, &set.name), set, |b, set| {
            b.iter(|| {
                for case in &set.cases {
                    black_box(s.engine.suggest_keywords_with(&case.dirty, &cfg));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suggest, bench_ablations);
criterion_main!(benches);
