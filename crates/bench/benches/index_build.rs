//! Benchmark: offline costs — XML parsing, corpus index construction,
//! and the posting-list codec (encode/decode throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xclean_datagen::{generate_dblp, DblpConfig};
use xclean_index::{codec, CorpusIndex, TokenId};
use xclean_xmltree::{parse_document, to_xml};

fn bench_parse_and_build(c: &mut Criterion) {
    let tree = generate_dblp(&DblpConfig {
        publications: 2_000,
        ..Default::default()
    });
    let xml = to_xml(&tree);
    let mut group = c.benchmark_group("offline");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_with_input(BenchmarkId::new("parse_xml", xml.len()), &xml, |b, xml| {
        b.iter(|| black_box(parse_document(xml).unwrap()))
    });
    group.bench_function("build_corpus_index", |b| {
        b.iter_with_setup(
            || parse_document(&xml).unwrap(),
            |tree| black_box(CorpusIndex::build(tree)),
        )
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let corpus = CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 2_000,
        ..Default::default()
    }));
    // The longest posting list exercises the codec best.
    let longest = (0..corpus.vocab().len() as u32)
        .map(TokenId)
        .max_by_key(|&t| corpus.postings(t).len())
        .unwrap();
    let list = corpus.postings(longest);
    let encoded = codec::encode(list);
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(list.len() as u64));
    group.bench_function("encode", |b| b.iter(|| black_box(codec::encode(list))));
    group.bench_function("decode", |b| {
        b.iter(|| black_box(codec::decode(encoded.clone()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_parse_and_build, bench_codec);
criterion_main!(benches);
