//! Benchmark: MergedList skipping vs exhaustive heap merge (§V-C — the
//! anchor + `skip_to` technique is the paper's I/O win; DESIGN.md
//! ablation E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xclean_index::{MergedList, PostingList, TokenId};
use xclean_xmltree::{NodeId, PathId};

/// Builds `lists` posting lists of `len` entries spread over a node-id
/// space of `universe`, deterministically.
fn make_lists(lists: usize, len: usize, universe: u32) -> Vec<PostingList> {
    (0..lists)
        .map(|l| {
            let mut pl = PostingList::new();
            let stride = universe / len as u32;
            for i in 0..len {
                // Offset per list so entries interleave.
                let node = (i as u32) * stride + (l as u32 * 7) % stride.max(1);
                pl.push(NodeId(node), PathId(0), 1, &[1, node]);
            }
            pl
        })
        .collect()
}

fn bench_merge_vs_skip(c: &mut Criterion) {
    let mut group = c.benchmark_group("merged_list");
    for &len in &[1_000usize, 10_000, 100_000] {
        let lists = make_lists(3, len, 1_000_000);
        // Full drain via next().
        group.bench_with_input(BenchmarkId::new("drain_next", len), &lists, |b, lists| {
            b.iter(|| {
                let mut m = MergedList::new(
                    lists
                        .iter()
                        .enumerate()
                        .map(|(i, l)| (TokenId(i as u32), l)),
                );
                let mut n = 0u64;
                while let Some(e) = m.next() {
                    n += u64::from(e.posting.node.0);
                }
                black_box(n)
            })
        });
        // Sparse access via skip_to jumps (simulates anchor alignment:
        // touch every 50th region only).
        group.bench_with_input(
            BenchmarkId::new("skip_to_sparse", len),
            &lists,
            |b, lists| {
                b.iter(|| {
                    let mut m = MergedList::new(
                        lists
                            .iter()
                            .enumerate()
                            .map(|(i, l)| (TokenId(i as u32), l)),
                    );
                    let mut n = 0u64;
                    let mut target = 0u32;
                    while let Some(e) = m.skip_to(NodeId(target)) {
                        n += u64::from(e.posting.node.0);
                        m.next();
                        target = e.posting.node.0 + 20_000;
                    }
                    black_box(n)
                })
            },
        );
    }
    group.finish();
}

/// Blocked (decode-on-access) storage: the skipping win in decode work.
fn bench_blocked(c: &mut Criterion) {
    use xclean_index::BlockedPostingList;
    let mut group = c.benchmark_group("blocked_posting_list");
    for &len in &[10_000usize, 100_000] {
        let plain = {
            let mut pl = PostingList::new();
            for i in 0..len {
                let n = (i as u32) * 7;
                pl.push(NodeId(n), PathId(0), 1, &[1, n]);
            }
            pl
        };
        let blocked = BlockedPostingList::from_plain(&plain);
        group.bench_with_input(
            BenchmarkId::new("drain_decode_all", len),
            &blocked,
            |b, blocked| {
                b.iter(|| {
                    let mut c = blocked.cursor();
                    let mut acc = 0u64;
                    while let Some(p) = c.current() {
                        acc += u64::from(p.node.0);
                        c.advance();
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("skip_decode_sparse", len),
            &blocked,
            |b, blocked| {
                b.iter(|| {
                    let mut c = blocked.cursor();
                    let mut acc = 0u64;
                    let mut target = 0u32;
                    loop {
                        c.skip_to(NodeId(target));
                        let Some(p) = c.current() else { break };
                        acc += u64::from(p.node.0);
                        c.advance();
                        target = p.node.0 + 50_000;
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_merge_vs_skip, bench_blocked);
criterion_main!(benches);
