//! Exact suggest-p50 on the 100k corpus (baseline measurement).
use std::sync::Arc;
use std::time::Instant;

use xclean::{XCleanConfig, XCleanEngine};
use xclean_datagen::{
    generate_large_dblp, make_workload, LargeDblpConfig, Perturbation, WorkloadSpec,
};
use xclean_index::CorpusIndex;

fn main() {
    let cfg = LargeDblpConfig {
        publications: 100_000,
        ..Default::default()
    };
    let corpus = Arc::new(CorpusIndex::build(generate_large_dblp(&cfg)));
    let engine = XCleanEngine::from_shared(corpus, XCleanConfig::default());
    let set = make_workload(
        engine.corpus(),
        &WorkloadSpec {
            n_queries: 64,
            ..WorkloadSpec::dblp(Perturbation::Rand)
        },
    );
    let queries: Vec<Vec<String>> = set.cases.into_iter().map(|c| c.dirty).collect();
    for kw in &queries {
        let _ = engine.suggest_keywords(kw);
    }
    let mut p50 = u64::MAX;
    let mut best_qps = 0f64;
    for _ in 0..3 {
        let mut nanos: Vec<u64> = Vec::with_capacity(queries.len());
        let t = Instant::now();
        for kw in &queries {
            let s = Instant::now();
            std::hint::black_box(engine.suggest_keywords(kw));
            nanos.push((s.elapsed().as_nanos() as u64).max(1));
        }
        best_qps = best_qps.max(queries.len() as f64 / t.elapsed().as_secs_f64());
        nanos.sort_unstable();
        p50 = p50.min(nanos[nanos.len() / 2]);
    }
    println!("exact_suggest_p50_ns={p50} qps={best_qps:.1}");
}
