//! Ad-hoc stage profiler for the large-tier workload: where does a
//! suggest call spend its time?
//!
//! Prints three views over the 100k-publication corpus:
//!  1. the engine's own stage histograms (bucketed p50/p95/p99),
//!  2. the posting-I/O and scoring counters,
//!  3. a per-query decomposition — slot build alone, the bare anchor
//!     walk with a no-op scoring callback, and the full algorithm —
//!     plus exact (non-bucketed) percentile medians bench-style.
//!
//! This is a diagnosis tool, not a benchmark: run it when a hot-path
//! change moves (or fails to move) the quick-bench numbers and you need
//! to know which stage absorbed the difference.
//!
//! ```text
//! cargo run --release -p xclean-bench --example stage_profile
//! ```

use std::sync::Arc;
use std::time::Instant;

use xclean::{telemetry::names, XCleanConfig, XCleanEngine};
use xclean_datagen::WorkloadSpec;
use xclean_datagen::{generate_large_dblp, make_workload, LargeDblpConfig, Perturbation};
use xclean_index::CorpusIndex;

fn main() {
    let cfg = LargeDblpConfig {
        publications: 100_000,
        ..Default::default()
    };
    let t = Instant::now();
    let corpus = Arc::new(CorpusIndex::build(generate_large_dblp(&cfg)));
    eprintln!("built corpus in {:?}", t.elapsed());
    let engine = XCleanEngine::from_shared(corpus, XCleanConfig::default());
    let set = make_workload(
        engine.corpus(),
        &WorkloadSpec {
            n_queries: 64,
            ..WorkloadSpec::dblp(Perturbation::Rand)
        },
    );
    let queries: Vec<Vec<String>> = set.cases.into_iter().map(|c| c.dirty).collect();
    let t = Instant::now();
    for _ in 0..4 {
        let _ = engine.suggest_many_keywords(&queries);
    }
    eprintln!("4 passes in {:?}", t.elapsed());
    for (name, key) in [
        ("slot", names::STAGE_SLOT),
        ("walk", names::STAGE_WALK),
        ("rank", names::STAGE_RANK),
        ("total", names::STAGE_TOTAL),
    ] {
        let h = engine.metrics().histogram_summary(key).unwrap();
        eprintln!(
            "{name:6} p50={:>12} p95={:>12} p99={:>12} count={}",
            h.p50, h.p95, h.p99, h.count
        );
    }
    for key in [
        names::SUBTREES,
        names::CANDIDATES,
        names::RESULT_TYPES,
        names::ENTITIES,
        names::POSTINGS_READ,
        names::POSTINGS_SKIPPED,
        names::SKIP_CALLS,
    ] {
        if let Some(v) = engine.metrics().counter_value(key) {
            eprintln!("{key} = {v}");
        }
    }

    // Decompose the walk stage: slots alone, bare anchor walk (no-op
    // scoring callback), and the full algorithm.
    let config = engine.config().clone();
    let mut slot_time = std::time::Duration::ZERO;
    let mut bare_walk = std::time::Duration::ZERO;
    let mut full_run = std::time::Duration::ZERO;
    let mut n_variants = 0usize;
    for kw in &queries {
        let t = Instant::now();
        let slots = engine.make_slots(kw);
        slot_time += t.elapsed();
        n_variants += slots.iter().map(|s| s.variants.len()).sum::<usize>();
        let t = Instant::now();
        let mut stats = Default::default();
        xclean::walk::walk_gated_subtrees(
            engine.corpus(),
            &slots,
            &config,
            &mut stats,
            |_, _, _| {},
        );
        bare_walk += t.elapsed();
        let t = Instant::now();
        let _ = xclean::run_xclean(engine.corpus(), &slots, &config);
        full_run += t.elapsed();
    }
    eprintln!(
        "decompose over {} queries: slots={slot_time:?} bare_walk={bare_walk:?} full_run={full_run:?} variants/query={}",
        queries.len(),
        n_variants / queries.len(),
    );

    // Exact (non-bucketed) medians, bench-style: min of per-pass medians
    // over isolated per-query timings.
    let mut suggest_p50 = u64::MAX;
    let mut slot_p50 = u64::MAX;
    let mut run_p50 = u64::MAX;
    for _ in 0..3 {
        let mut nanos: Vec<u64> = Vec::with_capacity(queries.len());
        let mut snanos: Vec<u64> = Vec::with_capacity(queries.len());
        let mut rnanos: Vec<u64> = Vec::with_capacity(queries.len());
        for keywords in &queries {
            let start = Instant::now();
            std::hint::black_box(engine.suggest_keywords(keywords));
            nanos.push((start.elapsed().as_nanos() as u64).max(1));
        }
        for keywords in &queries {
            let start = Instant::now();
            let slots = std::hint::black_box(engine.make_slots(keywords));
            snanos.push((start.elapsed().as_nanos() as u64).max(1));
            let start = Instant::now();
            std::hint::black_box(xclean::run_xclean(engine.corpus(), &slots, &config));
            rnanos.push((start.elapsed().as_nanos() as u64).max(1));
        }
        nanos.sort_unstable();
        snanos.sort_unstable();
        rnanos.sort_unstable();
        suggest_p50 = suggest_p50.min(nanos[nanos.len() / 2]);
        slot_p50 = slot_p50.min(snanos[snanos.len() / 2]);
        run_p50 = run_p50.min(rnanos[rnanos.len() / 2]);
    }
    eprintln!("exact p50: suggest={suggest_p50}ns make_slots={slot_p50}ns run_xclean={run_p50}ns");
}
