//! Quick-bench runner: a CI-friendly throughput/latency snapshot.
//!
//! The Criterion benches (`cargo bench -p xclean-bench`) reproduce the
//! paper's performance tables but take minutes; CI wants one number per
//! PR in seconds. This binary runs the batched suggestion workload in a
//! fixed-shape quick mode and writes a small JSON report — queries/sec
//! per thread count plus p50/p95 rank-stage latency pulled from the
//! engine's own metrics histograms — suitable for uploading as a build
//! artifact and diffing across PRs.
//!
//! ```text
//! cargo run -p xclean-bench --release -- --out BENCH_pr3.json [--full]
//! ```
//!
//! The same quick mode is available inside the Criterion benches via the
//! `XCLEAN_BENCH_QUICK` environment variable (shrinks corpora and sample
//! counts so `cargo bench` finishes in CI time).

use std::time::Instant;

use xclean::{XCleanConfig, XCleanEngine};
use xclean_datagen::{generate_dblp, make_workload, DblpConfig, Perturbation, WorkloadSpec};
use xclean_telemetry::names;

struct Scale {
    publications: usize,
    n_queries: usize,
    repeats: usize,
}

const QUICK: Scale = Scale {
    publications: 800,
    n_queries: 32,
    repeats: 3,
};

const FULL: Scale = Scale {
    publications: 5_000,
    n_queries: 64,
    repeats: 10,
};

fn main() {
    let mut out = String::from("BENCH_pr3.json");
    let mut scale = &QUICK;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out expects a path"),
            "--full" => scale = &FULL,
            "--quick" => scale = &QUICK,
            other => {
                eprintln!("unknown argument {other:?} (expected --out <path> | --quick | --full)");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "quick-bench: dblp {} publications, {} queries, {} repeat(s)",
        scale.publications, scale.n_queries, scale.repeats
    );
    let tree = generate_dblp(&DblpConfig {
        publications: scale.publications,
        ..Default::default()
    });
    let base = XCleanEngine::new(tree, XCleanConfig::default());
    let set = make_workload(
        base.corpus(),
        &WorkloadSpec {
            n_queries: scale.n_queries,
            ..WorkloadSpec::dblp(Perturbation::Rand)
        },
    );
    let queries: Vec<Vec<String>> = set.cases.into_iter().map(|c| c.dirty).collect();
    let corpus = base.corpus_shared();

    let mut thread_rows = Vec::new();
    for threads in [1usize, 4] {
        let engine = XCleanEngine::from_shared(
            corpus.clone(),
            XCleanConfig {
                num_threads: threads,
                ..Default::default()
            },
        );
        // One untimed pass to warm caches and populate code paths.
        let _ = engine.suggest_many_keywords(&queries);
        let mut best_qps = 0.0f64;
        for _ in 0..scale.repeats {
            let start = Instant::now();
            let responses = engine.suggest_many_keywords(&queries);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            assert_eq!(responses.len(), queries.len());
            best_qps = best_qps.max(queries.len() as f64 / secs);
        }
        // Rank-stage latency distribution across every query answered by
        // this engine (warm-up included — it is the same workload).
        let rank = engine
            .metrics()
            .histogram_summary(names::STAGE_RANK)
            .expect("rank histogram present");
        eprintln!(
            "  threads={threads}: {best_qps:.1} q/s, rank p50={} p95={} ns ({} samples)",
            rank.p50, rank.p95, rank.count
        );
        thread_rows.push(serde_json::json!({
            "threads": threads,
            "queries_per_sec": best_qps,
            "rank_nanos": serde_json::json!({
                "p50": rank.p50,
                "p95": rank.p95,
                "p99": rank.p99,
                "count": rank.count,
            }),
        }));
    }

    let report = serde_json::json!({
        "bench": "suggest_batch",
        "mode": if std::ptr::eq(scale, &FULL) { "full" } else { "quick" },
        "corpus": serde_json::json!({
            "dataset": "dblp",
            "publications": scale.publications,
            "nodes": corpus.tree().len(),
            "terms": corpus.vocab().len(),
        }),
        "workload": serde_json::json!({
            "n_queries": queries.len(),
            "perturbation": "rand",
            "repeats": scale.repeats,
        }),
        "results": serde_json::Value::Array(thread_rows),
    });
    let text = serde_json::to_string_pretty(&report).expect("serialisable");
    std::fs::write(&out, &text).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("report → {out}");
}
