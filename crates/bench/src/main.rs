//! Placeholder binary for the benchmark crate. The real entry points are
//! the Criterion benches: run `cargo bench -p xclean-bench` (optionally
//! `-- <filter>`); each bench file maps to one performance table/figure
//! of the paper (see DESIGN.md §4).

fn main() {
    eprintln!("run `cargo bench -p xclean-bench` to execute the Criterion benches");
}
