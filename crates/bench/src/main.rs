//! Quick-bench runner: a CI-friendly throughput/latency snapshot.
//!
//! The Criterion benches (`cargo bench -p xclean-bench`) reproduce the
//! paper's performance tables but take minutes; CI wants one number per
//! PR in seconds. This binary runs the batched suggestion workload in a
//! fixed-shape quick mode and writes a small JSON report — queries/sec
//! per thread count plus p50/p95 rank-stage latency pulled from the
//! engine's own metrics histograms — suitable for uploading as a build
//! artifact and diffing across PRs.
//!
//! ```text
//! cargo run -p xclean-bench --release -- --out BENCH_pr4.json [--full]
//! ```
//!
//! Besides throughput, the report carries a cold-start section comparing
//! the v1 rebuild-load with the v2 mapped open on the same corpus
//! (open/validate split, first-query latency, resident-set delta).
//!
//! The same quick mode is available inside the Criterion benches via the
//! `XCLEAN_BENCH_QUICK` environment variable (shrinks corpora and sample
//! counts so `cargo bench` finishes in CI time).

use std::time::Instant;

use xclean::{XCleanConfig, XCleanEngine};
use xclean_datagen::{generate_dblp, make_workload, DblpConfig, Perturbation, WorkloadSpec};
use xclean_index::{storage, OpenOptions, SlabMode};
use xclean_telemetry::names;

struct Scale {
    publications: usize,
    n_queries: usize,
    repeats: usize,
}

const QUICK: Scale = Scale {
    publications: 800,
    n_queries: 32,
    repeats: 3,
};

const FULL: Scale = Scale {
    publications: 5_000,
    n_queries: 64,
    repeats: 10,
};

/// VmRSS in kilobytes from /proc/self/status (Linux; None elsewhere).
fn vm_rss_kb() -> Option<i64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Cold-start comparison: the v1 rebuild-load versus the v2 open (mapped
/// and owned) on a dblp-1000 corpus (the scale the snapshot-v2 acceptance
/// criteria pin), plus the first full posting sweep after a lazy open and
/// the resident-set growth of each path.
///
/// RSS deltas are in-process and therefore indicative, not exact: the
/// allocator reuses freed pages, so the *second* format measured borrows
/// memory released by the first. The v2 mapped open is measured first so
/// its (small) delta is the honest one; reuse then only shrinks the v1
/// figure, making the comparison conservative.
fn bench_cold_start(repeats: usize) -> serde_json::Value {
    let corpus = &xclean_index::CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 1000,
        ..Default::default()
    }));
    let dir = std::env::temp_dir().join("xclean_quick_bench");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let v1_path = dir.join("cold.v1.xci");
    let v2_path = dir.join("cold.v2.xci");
    storage::save_to_file(corpus, &v1_path).expect("write v1 snapshot");
    storage::save_to_file_v2(corpus, &v2_path).expect("write v2 snapshot");
    let snapshot_bytes = std::fs::metadata(&v2_path).map(|m| m.len()).unwrap_or(0);

    // RSS deltas first, while the allocator is least polluted.
    let rss_before = vm_rss_kb().unwrap_or(0);
    let (v2_corpus, _) =
        storage::open_file(&v2_path, &OpenOptions::default()).expect("open v2 snapshot");
    let v2_open_rss_kb = vm_rss_kb().unwrap_or(0) - rss_before;
    let sweep_start = Instant::now();
    let touched: usize = v2_corpus.posting_lists().map(|l| l.len()).sum();
    let v2_sweep_nanos = (sweep_start.elapsed().as_nanos() as u64).max(1);
    assert!(touched > 0, "posting sweep touched nothing");
    drop(v2_corpus);
    let rss_before = vm_rss_kb().unwrap_or(0);
    let (v1_corpus, _) =
        storage::open_file(&v1_path, &OpenOptions::default()).expect("open v1 snapshot");
    let v1_open_rss_kb = vm_rss_kb().unwrap_or(0) - rss_before;
    drop(v1_corpus);

    // Open latency: best of `repeats` to shed scheduler noise.
    let time_best = |options: &OpenOptions, path: &std::path::Path| {
        let mut best = u64::MAX;
        let mut best_report = None;
        for _ in 0..repeats.max(1) {
            let start = Instant::now();
            let (c, report) = storage::open_file(path, options).expect("open snapshot");
            let nanos = (start.elapsed().as_nanos() as u64).max(1);
            drop(c);
            if nanos < best {
                best = nanos;
                best_report = Some(report);
            }
        }
        (best, best_report.expect("at least one timed open"))
    };
    let (v1_nanos, _) = time_best(&OpenOptions::default(), &v1_path);
    let (v2_nanos, v2_report) = time_best(&OpenOptions::default(), &v2_path);
    let (v2_owned_nanos, _) = time_best(
        &OpenOptions {
            mode: SlabMode::Owned,
            ..Default::default()
        },
        &v2_path,
    );

    let speedup = v1_nanos as f64 / v2_nanos as f64;
    xclean_telemetry::log_info!(
        "xclean_bench",
        "cold start measured",
        v1_load_ms = format!("{:.2}", v1_nanos as f64 / 1e6),
        v2_open_ms = format!("{:.3}", v2_nanos as f64 / 1e6),
        v2_mode = if v2_report.mapped { "mmap" } else { "owned" },
        speedup = format!("{speedup:.1}"),
        decode_sweep_ms = format!("{:.2}", v2_sweep_nanos as f64 / 1e6),
        v1_open_rss_kb = v1_open_rss_kb,
        v2_open_rss_kb = v2_open_rss_kb,
    );
    serde_json::json!({
        "snapshot_bytes": snapshot_bytes,
        "v1_load_nanos": v1_nanos,
        "v2_open_nanos": v2_nanos,
        "v2_open_owned_nanos": v2_owned_nanos,
        "v2_open_breakdown": serde_json::json!({
            "open_nanos": v2_report.open_nanos,
            "validate_nanos": v2_report.validate_nanos,
            "mapped": v2_report.mapped,
        }),
        "v2_full_decode_sweep_nanos": v2_sweep_nanos,
        "open_speedup_v1_over_v2": speedup,
        "rss_delta_kb": serde_json::json!({
            "v1_load": v1_open_rss_kb,
            "v2_open": v2_open_rss_kb,
        }),
    })
}

/// Observability-overhead guard: the request ring, rolling windows,
/// runtime histograms, and flight recorder are record-only and sit
/// *outside* the suggestion computation, so serving with them on adds
/// a fixed handful of records per request. A/B
/// medians of the full suggest call cannot resolve that cost on a noisy
/// CI box (run-to-run medians swing ±5%, the record is <1µs), so the
/// guard measures each side where it is stable: the per-record cost in
/// a tight loop over a server-shaped `RequestRecord`, and the suggest
/// p50 as the exact min-of-medians over the workload. Fails the bench —
/// and CI — if the record costs more than 2% of the p50.
fn bench_observability_overhead(
    corpus: &std::sync::Arc<xclean_index::CorpusIndex>,
    queries: &[Vec<String>],
    repeats: usize,
) -> serde_json::Value {
    use xclean_telemetry::{
        RequestRecord, RequestRing, RollingWindows, RuntimeEventKind, RuntimeStats, WindowEvent,
    };

    let engine = XCleanEngine::from_shared(corpus.clone(), XCleanConfig::default());
    // Warm the per-call path (allocator, branch predictors, the engine's
    // lazy structures) before any timing.
    for keywords in queries {
        let _ = engine.suggest_keywords(keywords);
    }

    // Suggest p50: exact median of each pass (every call's nanos, not a
    // histogram bucket bound), minimum across passes to shed noise.
    let mut suggest_p50 = u64::MAX;
    for _ in 0..repeats.max(3) {
        let mut nanos: Vec<u64> = Vec::with_capacity(queries.len());
        for keywords in queries {
            let start = Instant::now();
            std::hint::black_box(engine.suggest_keywords(keywords));
            nanos.push((start.elapsed().as_nanos() as u64).max(1));
        }
        nanos.sort_unstable();
        suggest_p50 = suggest_p50.min(nanos[nanos.len() / 2]);
    }

    // Per-request record cost: exactly what one served request adds on
    // the server — one window record and one ring push (trace-ID String
    // included), plus the PR-7 runtime plane: a loop-wake histogram
    // sample, a dispatch and a complete flight-recorder push, a
    // queue-wait sample, and a worker-busy accumulation. Enough
    // iterations to swamp timer granularity; the ring and the flight
    // buffer are at eviction capacity for most of them, the honest
    // steady state.
    let ring = RequestRing::new(512, 8);
    let windows = RollingWindows::new();
    let runtime = RuntimeStats::new(1, 4096);
    let iterations: u64 = 4096;
    let epoch = Instant::now();
    let start = Instant::now();
    for i in 0..iterations {
        let now = epoch.elapsed().as_nanos() as u64;
        runtime.record_loop_wake(1, 500);
        runtime
            .flight()
            .push(now, RuntimeEventKind::Dispatch { conn: i, seq: 0 });
        runtime.record_queue_wait(1_000);
        runtime.record_worker_busy(0, suggest_p50);
        runtime.flight().push(
            now,
            RuntimeEventKind::Complete {
                conn: i,
                seq: 0,
                status: 200,
            },
        );
        windows.record(
            now,
            &WindowEvent {
                total_nanos: suggest_p50,
                error: false,
                cache_hit: Some(false),
            },
        );
        ring.push(RequestRecord {
            seq: 0,
            trace_id: format!("bench-{i}"),
            route: "suggest",
            query: "health insurance".to_string(),
            status: 200,
            cache_hit: Some(false),
            slot_nanos: 0,
            walk_nanos: 0,
            rank_nanos: suggest_p50,
            total_nanos: suggest_p50,
            candidates: 0,
            entities: 0,
            suggestions: 0,
            arrived_nanos: now,
        });
    }
    let record_nanos = ((start.elapsed().as_nanos() as u64) / iterations).max(1);
    assert_eq!(ring.len(), 512, "ring reached eviction steady state");
    assert_eq!(
        runtime.flight().len(),
        4096,
        "flight recorder reached eviction steady state"
    );

    let overhead_pct = record_nanos as f64 / suggest_p50 as f64 * 100.0;
    xclean_telemetry::log_info!(
        "xclean_bench",
        "observability overhead measured",
        record_nanos = record_nanos,
        suggest_p50_nanos = suggest_p50,
        overhead_pct = format!("{overhead_pct:.3}"),
    );
    assert!(
        overhead_pct < 2.0,
        "ring + windows + runtime records cost {overhead_pct:.3}% of suggest p50 (budget: 2%)"
    );
    serde_json::json!({
        "suggest_p50_nanos": suggest_p50,
        "record_nanos": record_nanos,
        "overhead_pct": overhead_pct,
        "samples_per_pass": queries.len(),
        "budget_pct": 2.0,
    })
}

fn main() {
    let mut out = String::from("BENCH_pr4.json");
    let mut scale = &QUICK;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out expects a path"),
            "--full" => scale = &FULL,
            "--quick" => scale = &QUICK,
            other => {
                xclean_telemetry::log_error!(
                    "xclean_bench",
                    "unknown argument (expected --out <path> | --quick | --full)",
                    argument = format!("{other:?}"),
                );
                std::process::exit(2);
            }
        }
    }

    xclean_telemetry::log_info!(
        "xclean_bench",
        "quick-bench starting",
        dataset = "dblp",
        publications = scale.publications,
        queries = scale.n_queries,
        repeats = scale.repeats,
    );
    let tree = generate_dblp(&DblpConfig {
        publications: scale.publications,
        ..Default::default()
    });
    let base = XCleanEngine::new(tree, XCleanConfig::default());
    let set = make_workload(
        base.corpus(),
        &WorkloadSpec {
            n_queries: scale.n_queries,
            ..WorkloadSpec::dblp(Perturbation::Rand)
        },
    );
    let queries: Vec<Vec<String>> = set.cases.into_iter().map(|c| c.dirty).collect();
    let corpus = base.corpus_shared();

    let mut thread_rows = Vec::new();
    for threads in [1usize, 4] {
        let engine = XCleanEngine::from_shared(
            corpus.clone(),
            XCleanConfig {
                num_threads: threads,
                ..Default::default()
            },
        );
        // One untimed pass to warm caches and populate code paths.
        let _ = engine.suggest_many_keywords(&queries);
        let mut best_qps = 0.0f64;
        for _ in 0..scale.repeats {
            let start = Instant::now();
            let responses = engine.suggest_many_keywords(&queries);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            assert_eq!(responses.len(), queries.len());
            best_qps = best_qps.max(queries.len() as f64 / secs);
        }
        // Rank-stage latency distribution across every query answered by
        // this engine (warm-up included — it is the same workload).
        let rank = engine
            .metrics()
            .histogram_summary(names::STAGE_RANK)
            .expect("rank histogram present");
        xclean_telemetry::log_info!(
            "xclean_bench",
            "suggest batch timed",
            threads = threads,
            queries_per_sec = format!("{best_qps:.1}"),
            rank_p50_ns = rank.p50,
            rank_p95_ns = rank.p95,
            samples = rank.count,
        );
        thread_rows.push(serde_json::json!({
            "threads": threads,
            "queries_per_sec": best_qps,
            "rank_nanos": serde_json::json!({
                "p50": rank.p50,
                "p95": rank.p95,
                "p99": rank.p99,
                "count": rank.count,
            }),
        }));
    }

    let observability = bench_observability_overhead(&corpus, &queries, scale.repeats);
    let cold_start = bench_cold_start(scale.repeats.max(5));

    let report = serde_json::json!({
        "bench": "suggest_batch",
        "mode": if std::ptr::eq(scale, &FULL) { "full" } else { "quick" },
        "corpus": serde_json::json!({
            "dataset": "dblp",
            "publications": scale.publications,
            "nodes": corpus.tree().len(),
            "terms": corpus.vocab().len(),
        }),
        "workload": serde_json::json!({
            "n_queries": queries.len(),
            "perturbation": "rand",
            "repeats": scale.repeats,
        }),
        "results": serde_json::Value::Array(thread_rows),
        "observability_overhead": observability,
        "cold_start": cold_start,
    });
    let text = serde_json::to_string_pretty(&report).expect("serialisable");
    std::fs::write(&out, &text).unwrap_or_else(|e| {
        xclean_telemetry::log_error!("xclean_bench", "cannot write report", path = out, error = e);
        std::process::exit(1);
    });
    xclean_telemetry::log_info!("xclean_bench", "report written", path = out);
}
