//! Quick-bench runner: a CI-friendly throughput/latency snapshot.
//!
//! The Criterion benches (`cargo bench -p xclean-bench`) reproduce the
//! paper's performance tables but take minutes; CI wants one number per
//! PR in seconds. This binary runs the batched suggestion workload in a
//! fixed-shape mode and writes a small JSON report — queries/sec per
//! thread count plus p50/p95 suggest/rank-stage latency pulled from the
//! engine's own metrics histograms — suitable for uploading as a build
//! artifact and diffing across PRs.
//!
//! ```text
//! cargo run -p xclean-bench --release -- --out BENCH_pr8.json \
//!     [--quick | --full | --large] [--corpus-cache <path.xci>]
//! cargo run -p xclean-bench --release -- compare \
//!     --current BENCH_pr8.json --baseline bench/baselines.json \
//!     [--max-regress 0.10]
//! ```
//!
//! Tiers: `quick` (800 publications, the CI default), `full` (5k), and
//! `large` (100k publications over a ~30k-term synthesized vocabulary —
//! the realistic scale where hot-path wins actually register). The tier
//! defaults from `XCLEAN_BENCH_TIER` (the same flag the Criterion benches
//! read; legacy `XCLEAN_BENCH_QUICK=1` still means `quick`) and the CLI
//! flags override it; the runner logs which tier ran.
//!
//! `--corpus-cache` points at a v2 snapshot path: when present it is
//! mapped instead of regenerating the corpus (CI caches the 100k corpus
//! this way), and when absent the freshly built index is saved there
//! first. Both paths serve identical suggestions — the storage round-trip
//! suites pin that.
//!
//! `compare` diffs a current report against either a committed
//! `bench/baselines.json` (tier-keyed) or another `BENCH_*.json`, and
//! exits non-zero if suggest p50 or queries/sec regresses beyond the
//! tolerance — the CI `bench-regression` gate.
//!
//! Besides throughput, the report carries a cold-start section comparing
//! the v1 rebuild-load with the v2 mapped open on the same corpus
//! (open/validate split, first-query latency, resident-set delta).

use std::time::Instant;

use xclean::{XCleanConfig, XCleanEngine};
use xclean_bench::{tier_from_env, Tier};
use xclean_datagen::{
    generate_dblp, generate_large_dblp, make_workload, DblpConfig, LargeDblpConfig, Perturbation,
    WorkloadSpec,
};
use xclean_index::{storage, OpenOptions, SlabMode};
use xclean_telemetry::names;

struct Scale {
    tier: Tier,
    publications: usize,
    n_queries: usize,
    repeats: usize,
}

const QUICK: Scale = Scale {
    tier: Tier::Quick,
    publications: 800,
    n_queries: 32,
    repeats: 3,
};

const FULL: Scale = Scale {
    tier: Tier::Full,
    publications: 5_000,
    n_queries: 64,
    repeats: 10,
};

const LARGE: Scale = Scale {
    tier: Tier::Large,
    publications: 100_000,
    n_queries: 64,
    repeats: 3,
};

/// VmRSS in kilobytes from /proc/self/status (Linux; None elsewhere).
fn vm_rss_kb() -> Option<i64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Cold-start comparison: the v1 rebuild-load versus the v2 open (mapped
/// and owned) on a dblp-1000 corpus (the scale the snapshot-v2 acceptance
/// criteria pin), plus the first full posting sweep after a lazy open and
/// the resident-set growth of each path.
///
/// RSS deltas are in-process and therefore indicative, not exact: the
/// allocator reuses freed pages, so the *second* format measured borrows
/// memory released by the first. The v2 mapped open is measured first so
/// its (small) delta is the honest one; reuse then only shrinks the v1
/// figure, making the comparison conservative.
fn bench_cold_start(repeats: usize) -> serde_json::Value {
    let corpus = &xclean_index::CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 1000,
        ..Default::default()
    }));
    let dir = std::env::temp_dir().join("xclean_quick_bench");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let v1_path = dir.join("cold.v1.xci");
    let v2_path = dir.join("cold.v2.xci");
    storage::save_to_file(corpus, &v1_path).expect("write v1 snapshot");
    storage::save_to_file_v2(corpus, &v2_path).expect("write v2 snapshot");
    let snapshot_bytes = std::fs::metadata(&v2_path).map(|m| m.len()).unwrap_or(0);

    // RSS deltas first, while the allocator is least polluted.
    let rss_before = vm_rss_kb().unwrap_or(0);
    let (v2_corpus, _) =
        storage::open_file(&v2_path, &OpenOptions::default()).expect("open v2 snapshot");
    let v2_open_rss_kb = vm_rss_kb().unwrap_or(0) - rss_before;
    let sweep_start = Instant::now();
    let touched: usize = v2_corpus.posting_lists().map(|l| l.len()).sum();
    let v2_sweep_nanos = (sweep_start.elapsed().as_nanos() as u64).max(1);
    assert!(touched > 0, "posting sweep touched nothing");
    drop(v2_corpus);
    let rss_before = vm_rss_kb().unwrap_or(0);
    let (v1_corpus, _) =
        storage::open_file(&v1_path, &OpenOptions::default()).expect("open v1 snapshot");
    let v1_open_rss_kb = vm_rss_kb().unwrap_or(0) - rss_before;
    drop(v1_corpus);

    // Open latency: best of `repeats` to shed scheduler noise.
    let time_best = |options: &OpenOptions, path: &std::path::Path| {
        let mut best = u64::MAX;
        let mut best_report = None;
        for _ in 0..repeats.max(1) {
            let start = Instant::now();
            let (c, report) = storage::open_file(path, options).expect("open snapshot");
            let nanos = (start.elapsed().as_nanos() as u64).max(1);
            drop(c);
            if nanos < best {
                best = nanos;
                best_report = Some(report);
            }
        }
        (best, best_report.expect("at least one timed open"))
    };
    let (v1_nanos, _) = time_best(&OpenOptions::default(), &v1_path);
    let (v2_nanos, v2_report) = time_best(&OpenOptions::default(), &v2_path);
    let (v2_owned_nanos, _) = time_best(
        &OpenOptions {
            mode: SlabMode::Owned,
            ..Default::default()
        },
        &v2_path,
    );

    let speedup = v1_nanos as f64 / v2_nanos as f64;
    xclean_telemetry::log_info!(
        "xclean_bench",
        "cold start measured",
        v1_load_ms = format!("{:.2}", v1_nanos as f64 / 1e6),
        v2_open_ms = format!("{:.3}", v2_nanos as f64 / 1e6),
        v2_mode = if v2_report.mapped { "mmap" } else { "owned" },
        speedup = format!("{speedup:.1}"),
        decode_sweep_ms = format!("{:.2}", v2_sweep_nanos as f64 / 1e6),
        v1_open_rss_kb = v1_open_rss_kb,
        v2_open_rss_kb = v2_open_rss_kb,
    );
    serde_json::json!({
        "snapshot_bytes": snapshot_bytes,
        "v1_load_nanos": v1_nanos,
        "v2_open_nanos": v2_nanos,
        "v2_open_owned_nanos": v2_owned_nanos,
        "v2_open_breakdown": serde_json::json!({
            "open_nanos": v2_report.open_nanos,
            "validate_nanos": v2_report.validate_nanos,
            "mapped": v2_report.mapped,
        }),
        "v2_full_decode_sweep_nanos": v2_sweep_nanos,
        "open_speedup_v1_over_v2": speedup,
        "rss_delta_kb": serde_json::json!({
            "v1_load": v1_open_rss_kb,
            "v2_open": v2_open_rss_kb,
        }),
    })
}

/// Observability-overhead guard: the request ring, rolling windows,
/// runtime histograms, and flight recorder are record-only and sit
/// *outside* the suggestion computation, so serving with them on adds
/// a fixed handful of records per request. A/B
/// medians of the full suggest call cannot resolve that cost on a noisy
/// CI box (run-to-run medians swing ±5%, the record is <1µs), so the
/// guard measures each side where it is stable: the per-record cost in
/// a tight loop over a server-shaped `RequestRecord`, and the suggest
/// p50 as the exact min-of-medians over the workload. Fails the bench —
/// and CI — if the record costs more than 2% of the p50.
fn bench_observability_overhead(
    corpus: &std::sync::Arc<xclean_index::CorpusIndex>,
    queries: &[Vec<String>],
    repeats: usize,
) -> serde_json::Value {
    use xclean_telemetry::{
        RequestRecord, RequestRing, RollingWindows, RuntimeEventKind, RuntimeStats, WindowEvent,
    };

    let engine = XCleanEngine::from_shared(corpus.clone(), XCleanConfig::default());
    // Warm the per-call path (allocator, branch predictors, the engine's
    // lazy structures) before any timing.
    for keywords in queries {
        let _ = engine.suggest_keywords(keywords);
    }

    // Suggest p50: exact median of each pass (every call's nanos, not a
    // histogram bucket bound), minimum across passes to shed noise.
    let mut suggest_p50 = u64::MAX;
    for _ in 0..repeats.max(3) {
        let mut nanos: Vec<u64> = Vec::with_capacity(queries.len());
        for keywords in queries {
            let start = Instant::now();
            std::hint::black_box(engine.suggest_keywords(keywords));
            nanos.push((start.elapsed().as_nanos() as u64).max(1));
        }
        nanos.sort_unstable();
        suggest_p50 = suggest_p50.min(nanos[nanos.len() / 2]);
    }
    // Per-request record cost: exactly what one served request adds on
    // the server — one window record and one ring push (trace-ID String
    // included), plus the PR-7 runtime plane: a loop-wake histogram
    // sample, a dispatch and a complete flight-recorder push, a
    // queue-wait sample, and a worker-busy accumulation. Enough
    // iterations to swamp timer granularity; the ring and the flight
    // buffer are at eviction capacity for most of them, the honest
    // steady state.
    let ring = RequestRing::new(512, 8);
    let windows = RollingWindows::new();
    let runtime = RuntimeStats::new(1, 4096);
    let iterations: u64 = 4096;
    let epoch = Instant::now();
    let start = Instant::now();
    for i in 0..iterations {
        let now = epoch.elapsed().as_nanos() as u64;
        runtime.record_loop_wake(1, 500);
        runtime
            .flight()
            .push(now, RuntimeEventKind::Dispatch { conn: i, seq: 0 });
        runtime.record_queue_wait(1_000);
        runtime.record_worker_busy(0, suggest_p50);
        runtime.flight().push(
            now,
            RuntimeEventKind::Complete {
                conn: i,
                seq: 0,
                status: 200,
            },
        );
        windows.record(
            now,
            &WindowEvent {
                total_nanos: suggest_p50,
                error: false,
                cache_hit: Some(false),
                slo_breach: false,
            },
        );
        ring.push(RequestRecord {
            seq: 0,
            trace_id: format!("bench-{i}"),
            route: "suggest",
            query: "health insurance".to_string(),
            status: 200,
            cache_hit: Some(false),
            slot_nanos: 0,
            walk_nanos: 0,
            rank_nanos: suggest_p50,
            total_nanos: suggest_p50,
            candidates: 0,
            entities: 0,
            suggestions: 0,
            arrived_nanos: now,
            corpus: "default".to_string(),
            shards: Vec::new(),
        });
    }
    let record_nanos = ((start.elapsed().as_nanos() as u64) / iterations).max(1);
    assert_eq!(ring.len(), 512, "ring reached eviction steady state");
    assert_eq!(
        runtime.flight().len(),
        4096,
        "flight recorder reached eviction steady state"
    );

    let overhead_pct = record_nanos as f64 / suggest_p50 as f64 * 100.0;
    xclean_telemetry::log_info!(
        "xclean_bench",
        "observability overhead measured",
        record_nanos = record_nanos,
        suggest_p50_nanos = suggest_p50,
        overhead_pct = format!("{overhead_pct:.3}"),
    );
    // Two-armed budget: the relative gate catches regressions in the record
    // path, but a suggest-side speedup shrinks the denominator without the
    // record path getting any slower — so an absolutely-cheap record
    // (≤600 ns for ring + windows + runtime, ~2 cache-cold hash maps' worth)
    // also passes. The raw-speed pass cut quick-tier suggest p50 ~1.5×,
    // which is exactly the case the absolute arm exists for.
    assert!(
        overhead_pct < 2.0 || record_nanos <= 600,
        "ring + windows + runtime records cost {record_nanos} ns = {overhead_pct:.3}% of \
         suggest p50 (budget: 2% relative or 600 ns absolute)"
    );
    serde_json::json!({
        "suggest_p50_nanos": suggest_p50,
        "record_nanos": record_nanos,
        "overhead_pct": overhead_pct,
        "samples_per_pass": queries.len(),
        "budget_pct": 2.0,
    })
}

/// Builds (or maps) the benchmark corpus for `scale`. With a cache path,
/// an existing v2 snapshot is opened instead of regenerating; on a miss
/// the fresh index is saved there for the next run (this is what CI's
/// corpus cache restores).
fn acquire_corpus(
    scale: &Scale,
    cache: Option<&str>,
) -> (std::sync::Arc<xclean_index::CorpusIndex>, &'static str, u64) {
    if let Some(path) = cache {
        if std::path::Path::new(path).exists() {
            let start = Instant::now();
            let (corpus, report) =
                storage::open_file(path, &OpenOptions::default()).expect("open cached corpus");
            let nanos = (start.elapsed().as_nanos() as u64).max(1);
            xclean_telemetry::log_info!(
                "xclean_bench",
                "corpus cache hit",
                path = path,
                mapped = report.mapped,
                open_ms = format!("{:.1}", nanos as f64 / 1e6),
            );
            return (std::sync::Arc::new(corpus), "snapshot-cache", nanos);
        }
    }
    let start = Instant::now();
    let tree = match scale.tier {
        Tier::Large => generate_large_dblp(&LargeDblpConfig {
            publications: scale.publications,
            ..Default::default()
        }),
        _ => generate_dblp(&DblpConfig {
            publications: scale.publications,
            ..Default::default()
        }),
    };
    let corpus = xclean_index::CorpusIndex::build(tree);
    let nanos = (start.elapsed().as_nanos() as u64).max(1);
    xclean_telemetry::log_info!(
        "xclean_bench",
        "corpus generated",
        publications = scale.publications,
        terms = corpus.vocab().len(),
        build_ms = format!("{:.0}", nanos as f64 / 1e6),
    );
    if let Some(path) = cache {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        storage::save_to_file_v2(&corpus, path).expect("write corpus cache");
        xclean_telemetry::log_info!("xclean_bench", "corpus cache written", path = path);
    }
    (std::sync::Arc::new(corpus), "generated", nanos)
}

fn run_bench(scale: &Scale, out: &str, corpus_cache: Option<&str>) {
    xclean_telemetry::log_info!(
        "xclean_bench",
        "quick-bench starting",
        tier = scale.tier.name(),
        dataset = "dblp",
        publications = scale.publications,
        queries = scale.n_queries,
        repeats = scale.repeats,
    );
    let (corpus, corpus_source, corpus_nanos) = acquire_corpus(scale, corpus_cache);
    let base = XCleanEngine::from_shared(corpus.clone(), XCleanConfig::default());
    let set = make_workload(
        base.corpus(),
        &WorkloadSpec {
            n_queries: scale.n_queries,
            ..WorkloadSpec::dblp(Perturbation::Rand)
        },
    );
    let queries: Vec<Vec<String>> = set.cases.into_iter().map(|c| c.dirty).collect();
    drop(base);

    let mut thread_rows = Vec::new();
    for threads in [1usize, 4] {
        let engine = XCleanEngine::from_shared(
            corpus.clone(),
            XCleanConfig {
                num_threads: threads,
                ..Default::default()
            },
        );
        // One untimed pass to warm caches and populate code paths.
        let _ = engine.suggest_many_keywords(&queries);
        let mut best_qps = 0.0f64;
        for _ in 0..scale.repeats {
            let start = Instant::now();
            let responses = engine.suggest_many_keywords(&queries);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            assert_eq!(responses.len(), queries.len());
            best_qps = best_qps.max(queries.len() as f64 / secs);
        }
        // Stage latency distributions across every query answered by
        // this engine (warm-up included — it is the same workload).
        let rank = engine
            .metrics()
            .histogram_summary(names::STAGE_RANK)
            .expect("rank histogram present");
        let total = engine
            .metrics()
            .histogram_summary(names::STAGE_TOTAL)
            .expect("total histogram present");
        xclean_telemetry::log_info!(
            "xclean_bench",
            "suggest batch timed",
            threads = threads,
            queries_per_sec = format!("{best_qps:.1}"),
            suggest_p50_ns = total.p50,
            rank_p50_ns = rank.p50,
            rank_p95_ns = rank.p95,
            samples = rank.count,
        );
        thread_rows.push(serde_json::json!({
            "threads": threads,
            "queries_per_sec": best_qps,
            "suggest_nanos": serde_json::json!({
                "p50": total.p50,
                "p95": total.p95,
                "p99": total.p99,
                "count": total.count,
            }),
            "rank_nanos": serde_json::json!({
                "p50": rank.p50,
                "p95": rank.p95,
                "p99": rank.p99,
                "count": rank.count,
            }),
        }));
    }

    let observability = bench_observability_overhead(&corpus, &queries, scale.repeats);
    let cold_start = bench_cold_start(scale.repeats.max(5));

    let report = serde_json::json!({
        "bench": "suggest_batch",
        "mode": scale.tier.name(),
        "corpus": serde_json::json!({
            "dataset": if scale.tier == Tier::Large { "dblp-large" } else { "dblp" },
            "publications": scale.publications,
            "nodes": corpus.tree().len(),
            "terms": corpus.vocab().len(),
            "source": corpus_source,
            "acquire_nanos": corpus_nanos,
        }),
        "workload": serde_json::json!({
            "n_queries": queries.len(),
            "perturbation": "rand",
            "repeats": scale.repeats,
        }),
        "results": serde_json::Value::Array(thread_rows),
        "observability_overhead": observability,
        "cold_start": cold_start,
    });
    let text = serde_json::to_string_pretty(&report).expect("serialisable");
    std::fs::write(out, &text).unwrap_or_else(|e| {
        xclean_telemetry::log_error!("xclean_bench", "cannot write report", path = out, error = e);
        std::process::exit(1);
    });
    xclean_telemetry::log_info!(
        "xclean_bench",
        "report written",
        tier = scale.tier.name(),
        path = out
    );
}

/// Pulls the comparable numbers out of a report: either a full
/// `BENCH_*.json` (uses its `mode`, suggest p50, and per-thread q/s) or a
/// tier-keyed `bench/baselines.json` entry.
fn comparable(v: &serde_json::Value, tier: &str) -> Option<(u64, Vec<(u64, f64)>)> {
    let entry = if v.get("bench").is_some() {
        // A full report: only comparable if it measured the same tier
        // ("quick" historically spelled itself via the absent/legacy
        // mode field — treat missing mode as quick).
        let mode = v.get("mode").and_then(|m| m.as_str()).unwrap_or("quick");
        if mode != tier {
            return None;
        }
        v
    } else {
        v.get(tier)?
    };
    let p50 = entry
        .get("observability_overhead")
        .and_then(|o| o.get("suggest_p50_nanos"))
        .or_else(|| entry.get("suggest_p50_nanos"))
        .and_then(|x| x.as_u64())?;
    let mut qps = Vec::new();
    if let Some(rows) = entry.get("results").and_then(|r| r.as_array()) {
        for row in rows {
            if let (Some(t), Some(q)) = (
                row.get("threads").and_then(|x| x.as_u64()),
                row.get("queries_per_sec").and_then(|x| x.as_f64()),
            ) {
                qps.push((t, q));
            }
        }
    } else if let Some(serde_json::Value::Object(fields)) = entry.get("queries_per_sec") {
        for (t, q) in fields {
            if let (Ok(t), Some(q)) = (t.parse::<u64>(), q.as_f64()) {
                qps.push((t, q));
            }
        }
    }
    Some((p50, qps))
}

/// `compare` subcommand: fail (exit 1) if the current report's suggest
/// p50 or queries/sec regresses more than `max_regress` against the
/// baseline. Prints one line per compared metric.
fn run_compare(current_path: &str, baseline_path: &str, max_regress: f64) {
    let read = |p: &str| -> serde_json::Value {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            xclean_telemetry::log_error!("xclean_bench", "cannot read report", path = p, error = e);
            std::process::exit(2);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            xclean_telemetry::log_error!("xclean_bench", "malformed report", path = p, error = e);
            std::process::exit(2);
        })
    };
    let current = read(current_path);
    let baseline = read(baseline_path);
    let tier = current
        .get("mode")
        .and_then(|m| m.as_str())
        .unwrap_or("quick")
        .to_string();
    let Some((cur_p50, cur_qps)) = comparable(&current, &tier) else {
        xclean_telemetry::log_error!(
            "xclean_bench",
            "current report has no comparable numbers",
            path = current_path,
            tier = tier,
        );
        std::process::exit(2);
    };
    let Some((base_p50, base_qps)) = comparable(&baseline, &tier) else {
        xclean_telemetry::log_error!(
            "xclean_bench",
            "baseline has no entry for this tier (add one to bench/baselines.json, \
             or land with [bench-reset] in the commit message)",
            path = baseline_path,
            tier = tier,
        );
        std::process::exit(2);
    };

    let mut failed = false;
    let p50_ratio = cur_p50 as f64 / base_p50 as f64;
    let p50_regressed = p50_ratio > 1.0 + max_regress;
    xclean_telemetry::log_info!(
        "xclean_bench",
        "compare suggest p50",
        tier = tier,
        current_ns = cur_p50,
        baseline_ns = base_p50,
        ratio = format!("{p50_ratio:.3}"),
        verdict = if p50_regressed { "REGRESSED" } else { "ok" },
    );
    failed |= p50_regressed;
    for (threads, cur) in &cur_qps {
        let Some((_, base)) = base_qps.iter().find(|(t, _)| t == threads) else {
            continue;
        };
        let ratio = cur / base;
        let regressed = ratio < 1.0 - max_regress;
        xclean_telemetry::log_info!(
            "xclean_bench",
            "compare queries/sec",
            tier = tier,
            threads = threads,
            current = format!("{cur:.1}"),
            baseline = format!("{base:.1}"),
            ratio = format!("{ratio:.3}"),
            verdict = if regressed { "REGRESSED" } else { "ok" },
        );
        failed |= regressed;
    }
    if failed {
        xclean_telemetry::log_error!(
            "xclean_bench",
            "bench regression beyond tolerance",
            tolerance = format!("{:.0}%", max_regress * 100.0),
            baseline = baseline_path,
        );
        std::process::exit(1);
    }
    xclean_telemetry::log_info!(
        "xclean_bench",
        "no bench regression",
        tolerance = format!("{:.0}%", max_regress * 100.0),
    );
}

fn usage_exit(context: &str) -> ! {
    xclean_telemetry::log_error!(
        "xclean_bench",
        "bad invocation (expected: [--out <path>] [--quick|--full|--large] \
         [--corpus-cache <path.xci>] | compare --current <json> --baseline <json> \
         [--max-regress <frac>])",
        argument = context,
    );
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("compare") {
        let mut current = None;
        let mut baseline = None;
        let mut max_regress = 0.10f64;
        let mut args = argv.into_iter().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--current" => current = args.next(),
                "--baseline" => baseline = args.next(),
                "--max-regress" => {
                    max_regress = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage_exit("--max-regress expects a fraction"));
                }
                other => usage_exit(other),
            }
        }
        let (Some(current), Some(baseline)) = (current, baseline) else {
            usage_exit("compare needs --current and --baseline");
        };
        run_compare(&current, &baseline, max_regress);
        return;
    }

    let mut out = String::from("BENCH_pr8.json");
    // The env tier (XCLEAN_BENCH_TIER, or legacy XCLEAN_BENCH_QUICK=1) is
    // the default; explicit flags override it.
    let mut tier = tier_from_env().unwrap_or(Tier::Quick);
    let mut corpus_cache = None;
    let mut args = argv.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                out = args
                    .next()
                    .unwrap_or_else(|| usage_exit("--out expects a path"))
            }
            "--full" => tier = Tier::Full,
            "--quick" => tier = Tier::Quick,
            "--large" => tier = Tier::Large,
            "--corpus-cache" => {
                corpus_cache = Some(
                    args.next()
                        .unwrap_or_else(|| usage_exit("--corpus-cache expects a path")),
                )
            }
            other => usage_exit(other),
        }
    }
    let scale = match tier {
        Tier::Quick => &QUICK,
        Tier::Full => &FULL,
        Tier::Large => &LARGE,
    };
    run_bench(scale, &out, corpus_cache.as_deref());
}
