//! `loadgen` — a keep-alive HTTP load generator for the suggestion
//! server (DESIGN.md §13).
//!
//! Drives thousands of concurrent persistent connections from a single
//! epoll loop (the same [`xclean_server::epoll`] shim the server's
//! event loop uses), each running a closed loop: send one
//! `GET /suggest?q=…`, read the full response, record its latency, send
//! the next. Writes a JSON report — sustained queries/sec plus
//! p50/p95/p99 latency — suitable for uploading as a CI artifact and
//! diffing across PRs.
//!
//! ```text
//! cargo run -p xclean-bench --release --bin loadgen -- \
//!     --addr 127.0.0.1:8080 --connections 1000 --duration 30 \
//!     --out BENCH_pr6.json
//! ```
//!
//! Options:
//!
//! - `--addr HOST:PORT` — target server (default `127.0.0.1:8080`).
//! - `--connections N` — concurrent persistent connections (default 64).
//! - `--duration SECS` — measured window (default 30).
//! - `--warmup SECS` — unrecorded lead-in (default 2).
//! - `--queries PATH` — newline-separated query mix (default: a built-in
//!   list of typo'd DBLP-flavoured queries).
//! - `--path P` — endpoint path for every request (default `/suggest`;
//!   use `/suggest/<corpus>` against a multi-tenant catalog server).
//! - `--target P[=W]` — repeatable weighted multi-target mix: each
//!   request picks one path from the declared targets, proportionally to
//!   the integer weights (default weight 1). Mutually exclusive with
//!   `--path`; the report then carries a `per_target` breakdown with
//!   per-path q/s and p50/p95/p99 latency.
//! - `--healthz-every N` — fold one cheap `GET /healthz` into every Nth
//!   request per connection (0 = pure suggestion traffic, the default).
//! - `--out PATH` — JSON report path (default `BENCH_pr6.json`).
//!
//! Every non-200 status, framing error, or mid-response disconnect
//! counts as an error in the report; the PR-6 acceptance bar is zero.

#[cfg(target_os = "linux")]
fn main() {
    linux::main()
}

#[cfg(not(target_os = "linux"))]
fn main() {
    xclean_telemetry::log_error!(
        "xclean_loadgen",
        "loadgen drives sockets through epoll(7) and only runs on Linux",
    );
    std::process::exit(2);
}

#[cfg(target_os = "linux")]
mod linux {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    use xclean_server::epoll::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};

    const DEFAULT_QUERIES: &[&str] = &[
        "databse systems",
        "xml keywrd search",
        "relatinal algebra",
        "quer optimization",
        "data integraton",
        "infomation retrieval",
        "spelling correcton",
        "strem processing",
        "grph databases",
        "machne learning",
        "distriuted transactions",
        "apprximate matching",
        "semi structured dta",
        "top k rankng",
        "edit distnce",
        "probabilstic models",
    ];

    struct Options {
        addr: String,
        connections: usize,
        duration: Duration,
        warmup: Duration,
        queries: Vec<String>,
        /// Weighted request paths: `(path, weight)`, weights ≥ 1.
        targets: Vec<(String, u64)>,
        healthz_every: usize,
        out: String,
    }

    fn parse_args() -> Options {
        let mut opts = Options {
            addr: "127.0.0.1:8080".to_string(),
            connections: 64,
            duration: Duration::from_secs(30),
            warmup: Duration::from_secs(2),
            queries: DEFAULT_QUERIES.iter().map(|q| q.to_string()).collect(),
            targets: Vec::new(),
            healthz_every: 0,
            out: "BENCH_pr6.json".to_string(),
        };
        let mut path_flag: Option<String> = None;
        let mut args = std::env::args().skip(1);
        let next = |flag: &str, args: &mut dyn Iterator<Item = String>| {
            args.next().unwrap_or_else(|| {
                xclean_telemetry::log_error!("xclean_loadgen", "flag expects a value", flag = flag);
                std::process::exit(2);
            })
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--addr" => opts.addr = next("--addr", &mut args),
                "--connections" => {
                    opts.connections = next("--connections", &mut args)
                        .parse()
                        .expect("--connections expects a number")
                }
                "--duration" => {
                    opts.duration = Duration::from_secs_f64(
                        next("--duration", &mut args)
                            .parse()
                            .expect("--duration expects seconds"),
                    )
                }
                "--warmup" => {
                    opts.warmup = Duration::from_secs_f64(
                        next("--warmup", &mut args)
                            .parse()
                            .expect("--warmup expects seconds"),
                    )
                }
                "--healthz-every" => {
                    opts.healthz_every = next("--healthz-every", &mut args)
                        .parse()
                        .expect("--healthz-every expects a number")
                }
                "--queries" => {
                    let path = next("--queries", &mut args);
                    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                        xclean_telemetry::log_error!(
                            "xclean_loadgen",
                            "cannot read queries file",
                            path = path,
                            error = e,
                        );
                        std::process::exit(2);
                    });
                    opts.queries = text
                        .lines()
                        .map(str::trim)
                        .filter(|l| !l.is_empty() && !l.starts_with('#'))
                        .map(str::to_string)
                        .collect();
                    assert!(!opts.queries.is_empty(), "{path} holds no queries");
                }
                "--path" => path_flag = Some(next("--path", &mut args)),
                "--target" => {
                    let spec = next("--target", &mut args);
                    let (path, weight) = match spec.rsplit_once('=') {
                        Some((p, w)) => {
                            let weight: u64 = w.parse().unwrap_or_else(|_| {
                                xclean_telemetry::log_error!(
                                    "xclean_loadgen",
                                    "--target weight must be a positive integer",
                                    target = spec,
                                );
                                std::process::exit(2);
                            });
                            (p.to_string(), weight)
                        }
                        None => (spec.clone(), 1),
                    };
                    if weight == 0 || !path.starts_with('/') {
                        xclean_telemetry::log_error!(
                            "xclean_loadgen",
                            "--target expects /path[=positive-weight]",
                            target = spec,
                        );
                        std::process::exit(2);
                    }
                    opts.targets.push((path, weight));
                }
                "--out" => opts.out = next("--out", &mut args),
                other => {
                    xclean_telemetry::log_error!(
                        "xclean_loadgen",
                        "unknown argument (expected --addr --connections --duration \
                         --warmup --queries --path --target --healthz-every --out)",
                        argument = format!("{other:?}"),
                    );
                    std::process::exit(2);
                }
            }
        }
        assert!(opts.connections > 0, "--connections must be positive");
        match (path_flag, opts.targets.is_empty()) {
            (Some(_), false) => {
                xclean_telemetry::log_error!(
                    "xclean_loadgen",
                    "--path and --target are mutually exclusive",
                );
                std::process::exit(2);
            }
            (Some(p), true) => {
                assert!(p.starts_with('/'), "--path expects an absolute path");
                opts.targets.push((p, 1));
            }
            (None, true) => opts.targets.push(("/suggest".to_string(), 1)),
            (None, false) => {}
        }
        opts
    }

    /// Percent-encodes a query for the `q=` parameter (ASCII-safe for
    /// the built-in mix; anything non-alphanumeric goes `%XX`).
    fn encode_query(q: &str) -> String {
        let mut out = String::with_capacity(q.len());
        for b in q.bytes() {
            match b {
                b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => out.push(b as char),
                _ => out.push_str(&format!("%{b:02X}")),
            }
        }
        out
    }

    /// One persistent connection in its closed request→response loop.
    struct Conn {
        stream: TcpStream,
        /// The request currently going out, and how much of it has been
        /// written.
        out_buf: Vec<u8>,
        out_pos: usize,
        /// Bytes of the response currently coming in.
        in_buf: Vec<u8>,
        /// When the in-flight request was sent (nanos since epoch).
        sent_at: u64,
        /// Index into the per-connection request schedule.
        step: usize,
        /// Target index of the in-flight request ([`HEALTHZ_TARGET`] for
        /// a folded-in `/healthz` probe).
        in_flight_target: usize,
        /// Registered write interest, mirrored into `EPOLL_CTL_MOD`.
        want_write: bool,
        alive: bool,
    }

    /// `Conn::in_flight_target` sentinel for `/healthz` probes, which
    /// belong to no declared target.
    const HEALTHZ_TARGET: usize = usize::MAX;

    /// Per-target slice of the tally, one per declared `--target`.
    #[derive(Default)]
    struct TargetTally {
        requests: u64,
        errors: u64,
        /// Measured-window latencies of this target's requests, so the
        /// report can break p50/p95/p99 down per path.
        latencies: Vec<u64>,
    }

    /// Everything the report needs, accumulated as responses complete.
    struct Tally {
        latencies: Vec<u64>,
        warmup_requests: u64,
        requests: u64,
        errors: u64,
        bytes_in: u64,
        per_target: Vec<TargetTally>,
    }

    struct Loadgen {
        epoll: Epoll,
        conns: Vec<Conn>,
        /// Pre-rendered request bytes, indexed `[target][query]`.
        requests: Vec<Vec<Vec<u8>>>,
        /// Weighted target rotation: one entry per unit of weight.
        target_schedule: Vec<usize>,
        healthz_every: usize,
        epoch: Instant,
        measuring_from: u64,
        tally: Tally,
    }

    impl Loadgen {
        fn now(&self) -> u64 {
            self.epoch.elapsed().as_nanos() as u64
        }

        /// The next request on `conn`'s schedule: its own rotation of the
        /// weighted target mix crossed with the query mix, with a
        /// `/healthz` folded in every Nth step when requested. Returns
        /// the request bytes plus the target index they count against.
        fn next_request(&self, token: usize) -> (Vec<u8>, usize) {
            let conn = &self.conns[token];
            if self.healthz_every > 0 && conn.step % self.healthz_every == self.healthz_every - 1 {
                return (
                    b"GET /healthz HTTP/1.1\r\nHost: loadgen\r\n\r\n".to_vec(),
                    HEALTHZ_TARGET,
                );
            }
            // Offset by the token so concurrent connections spread over
            // the mix instead of hammering one cache entry in lockstep.
            let target = self.target_schedule[(conn.step + token) % self.target_schedule.len()];
            let queries = &self.requests[target];
            (queries[(conn.step + token) % queries.len()].clone(), target)
        }

        fn send_next(&mut self, token: usize) {
            let (request, target) = self.next_request(token);
            let now = self.now();
            let conn = &mut self.conns[token];
            conn.step += 1;
            conn.out_buf = request;
            conn.out_pos = 0;
            conn.sent_at = now;
            conn.in_flight_target = target;
            self.flush(token);
        }

        /// Writes as much of the pending request as the socket accepts,
        /// tracking EPOLLOUT interest for the remainder.
        fn flush(&mut self, token: usize) {
            let conn = &mut self.conns[token];
            while conn.out_pos < conn.out_buf.len() {
                match conn.stream.write(&conn.out_buf[conn.out_pos..]) {
                    Ok(0) => return self.fail(token, "zero-length write"),
                    Ok(n) => conn.out_pos += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return self.fail(token, &format!("write: {e}")),
                }
            }
            let want_write = conn.out_pos < conn.out_buf.len();
            if want_write != conn.want_write {
                conn.want_write = want_write;
                let events = EPOLLIN | if want_write { EPOLLOUT } else { 0 };
                let _ = self
                    .epoll
                    .modify(conn.stream.as_raw_fd(), events, token as u64);
            }
        }

        /// Reads available bytes and completes at most one response (the
        /// loop is closed: exactly one request is ever in flight).
        fn on_readable(&mut self, token: usize) {
            let mut chunk = [0u8; 16 * 1024];
            loop {
                let conn = &mut self.conns[token];
                match conn.stream.read(&mut chunk) {
                    Ok(0) => return self.fail(token, "server closed mid-response"),
                    Ok(n) => {
                        conn.in_buf.extend_from_slice(&chunk[..n]);
                        self.tally.bytes_in += n as u64;
                        if self.try_complete(token) {
                            return;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return self.fail(token, &format!("read: {e}")),
                }
            }
        }

        /// If a full response is buffered, records it and sends the next
        /// request. Returns true when the response completed.
        fn try_complete(&mut self, token: usize) -> bool {
            let conn = &self.conns[token];
            let head_end = match conn.in_buf.windows(4).position(|w| w == b"\r\n\r\n") {
                Some(i) => i + 4,
                None => return false,
            };
            let head = String::from_utf8_lossy(&conn.in_buf[..head_end]);
            let status: u16 = head
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let content_length: usize = head
                .lines()
                .filter_map(|l| l.split_once(':'))
                .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                .and_then(|(_, v)| v.trim().parse().ok())
                .unwrap_or(0);
            if conn.in_buf.len() < head_end + content_length {
                return false;
            }
            let sent_at = conn.sent_at;
            let now = self.now();
            let conn = &mut self.conns[token];
            conn.in_buf.drain(..head_end + content_length);
            let target = conn.in_flight_target;
            if status != 200 {
                self.tally.errors += 1;
                if target != HEALTHZ_TARGET {
                    self.tally.per_target[target].errors += 1;
                }
            } else if now >= self.measuring_from {
                self.tally.requests += 1;
                let latency = now.saturating_sub(sent_at).max(1);
                if target != HEALTHZ_TARGET {
                    let t = &mut self.tally.per_target[target];
                    t.requests += 1;
                    t.latencies.push(latency);
                }
                self.tally.latencies.push(latency);
            } else {
                self.tally.warmup_requests += 1;
            }
            self.send_next(token);
            true
        }

        /// Counts an error and retires the connection.
        fn fail(&mut self, token: usize, what: &str) {
            let conn = &mut self.conns[token];
            if conn.alive {
                xclean_telemetry::log_warn!(
                    "xclean_loadgen",
                    "connection failed",
                    conn = token,
                    cause = what,
                );
                self.tally.errors += 1;
                conn.alive = false;
                let _ = self.epoll.del(conn.stream.as_raw_fd());
            }
        }
    }

    fn percentile(sorted: &[u64], p: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    pub fn main() {
        let opts = parse_args();
        let requests: Vec<Vec<Vec<u8>>> = opts
            .targets
            .iter()
            .map(|(path, _weight)| {
                opts.queries
                    .iter()
                    .map(|q| {
                        format!(
                            "GET {path}?q={} HTTP/1.1\r\nHost: loadgen\r\n\r\n",
                            encode_query(q)
                        )
                        .into_bytes()
                    })
                    .collect()
            })
            .collect();
        let target_schedule: Vec<usize> = opts
            .targets
            .iter()
            .enumerate()
            .flat_map(|(i, (_path, weight))| std::iter::repeat_n(i, *weight as usize))
            .collect();

        xclean_telemetry::log_info!(
            "xclean_loadgen",
            "loadgen starting",
            connections = opts.connections,
            addr = opts.addr,
            duration_secs = format!("{:.0}", opts.duration.as_secs_f64()),
            warmup_secs = format!("{:.0}", opts.warmup.as_secs_f64()),
            query_mix = opts.queries.len(),
            targets = opts.targets.len(),
        );

        // Connect in waves: the listen backlog is finite, so a burst of
        // thousands of SYNs would stall on retransmits.
        let epoll = Epoll::new().expect("epoll_create1");
        let mut conns = Vec::with_capacity(opts.connections);
        for token in 0..opts.connections {
            let stream = {
                let mut attempt = 0;
                loop {
                    match TcpStream::connect(&opts.addr) {
                        Ok(s) => break s,
                        Err(e) if attempt < 40 => {
                            attempt += 1;
                            std::thread::sleep(Duration::from_millis(50));
                            if attempt == 40 {
                                xclean_telemetry::log_warn!(
                                    "xclean_loadgen",
                                    "connect still retrying",
                                    addr = opts.addr,
                                    error = e,
                                );
                            }
                        }
                        Err(e) => {
                            xclean_telemetry::log_error!(
                                "xclean_loadgen",
                                "cannot connect",
                                addr = opts.addr,
                                error = e,
                            );
                            std::process::exit(1);
                        }
                    }
                }
            };
            stream.set_nonblocking(true).expect("set_nonblocking");
            stream.set_nodelay(true).ok();
            epoll
                .add(stream.as_raw_fd(), EPOLLIN, token as u64)
                .expect("epoll add");
            conns.push(Conn {
                stream,
                out_buf: Vec::new(),
                out_pos: 0,
                in_buf: Vec::new(),
                sent_at: 0,
                step: token % opts.queries.len().max(1),
                in_flight_target: HEALTHZ_TARGET,
                want_write: false,
                alive: true,
            });
            if token % 100 == 99 {
                std::thread::sleep(Duration::from_millis(10));
            }
        }

        let epoch = Instant::now();
        let mut gen = Loadgen {
            epoll,
            conns,
            requests,
            target_schedule,
            healthz_every: opts.healthz_every,
            epoch,
            measuring_from: opts.warmup.as_nanos() as u64,
            tally: Tally {
                latencies: Vec::with_capacity(1 << 20),
                warmup_requests: 0,
                requests: 0,
                errors: 0,
                bytes_in: 0,
                per_target: opts
                    .targets
                    .iter()
                    .map(|_| TargetTally::default())
                    .collect(),
            },
        };

        // Prime every connection's closed loop.
        for token in 0..gen.conns.len() {
            gen.send_next(token);
        }

        let deadline = (opts.warmup + opts.duration).as_nanos() as u64;
        let mut events = [EpollEvent { events: 0, data: 0 }; 1024];
        while gen.now() < deadline {
            let n = gen.epoll.wait(&mut events, 100).expect("epoll_wait");
            for event in &events[..n] {
                let token = event.token() as usize;
                let bits = event.events();
                if !gen.conns[token].alive {
                    continue;
                }
                if bits & (EPOLLERR | EPOLLHUP) != 0 {
                    gen.fail(token, "socket error/hangup");
                    continue;
                }
                if bits & EPOLLOUT != 0 {
                    gen.flush(token);
                }
                if bits & EPOLLIN != 0 && gen.conns[token].alive {
                    gen.on_readable(token);
                }
            }
            if gen.conns.iter().all(|c| !c.alive) {
                xclean_telemetry::log_error!(
                    "xclean_loadgen",
                    "every connection failed; giving up"
                );
                break;
            }
        }

        // In-flight requests at the deadline are simply abandoned (the
        // measured window is over); sockets close on drop.
        let measured_secs = gen
            .now()
            .saturating_sub(gen.measuring_from)
            .min(opts.duration.as_nanos() as u64) as f64
            / 1e9;
        let mut latencies = std::mem::take(&mut gen.tally.latencies);
        latencies.sort_unstable();
        let qps = gen.tally.requests as f64 / measured_secs.max(1e-9);
        let p50 = percentile(&latencies, 0.50);
        let p95 = percentile(&latencies, 0.95);
        let p99 = percentile(&latencies, 0.99);
        let max = latencies.last().copied().unwrap_or(0);
        let alive = gen.conns.iter().filter(|c| c.alive).count();

        xclean_telemetry::log_info!(
            "xclean_loadgen",
            "measured window complete",
            requests = gen.tally.requests,
            measured_secs = format!("{measured_secs:.1}"),
            queries_per_sec = format!("{qps:.1}"),
            errors = gen.tally.errors,
            connections_alive = alive,
            connections = opts.connections,
            p50_ms = format!("{:.2}", p50 as f64 / 1e6),
            p95_ms = format!("{:.2}", p95 as f64 / 1e6),
            p99_ms = format!("{:.2}", p99 as f64 / 1e6),
        );

        let per_target: Vec<serde_json::Value> = opts
            .targets
            .iter()
            .zip(&mut gen.tally.per_target)
            .map(|((path, weight), t)| {
                t.latencies.sort_unstable();
                serde_json::json!({
                    "path": path,
                    "weight": weight,
                    "requests": t.requests,
                    "errors": t.errors,
                    "queries_per_sec": t.requests as f64 / measured_secs.max(1e-9),
                    "latency_nanos": serde_json::json!({
                        "p50": percentile(&t.latencies, 0.50),
                        "p95": percentile(&t.latencies, 0.95),
                        "p99": percentile(&t.latencies, 0.99),
                    }),
                })
            })
            .collect();

        let report = serde_json::json!({
            "bench": "loadgen",
            "target": opts.addr,
            "connections": opts.connections,
            "connections_alive_at_end": alive,
            "warmup_secs": opts.warmup.as_secs_f64(),
            "duration_secs": measured_secs,
            "query_mix": opts.queries.len(),
            "healthz_every": opts.healthz_every,
            "warmup_requests": gen.tally.warmup_requests,
            "requests": gen.tally.requests,
            "errors": gen.tally.errors,
            "queries_per_sec": qps,
            "per_target": per_target,
            "bytes_in": gen.tally.bytes_in,
            "latency_nanos": serde_json::json!({
                "p50": p50,
                "p95": p95,
                "p99": p99,
                "max": max,
                "samples": latencies.len(),
            }),
        });
        let text = serde_json::to_string_pretty(&report).expect("serialisable");
        std::fs::write(&opts.out, &text).unwrap_or_else(|e| {
            xclean_telemetry::log_error!(
                "xclean_loadgen",
                "cannot write report",
                path = opts.out,
                error = e,
            );
            std::process::exit(1);
        });
        xclean_telemetry::log_info!("xclean_loadgen", "report written", path = opts.out);
        if gen.tally.errors > 0 || gen.tally.requests == 0 {
            std::process::exit(1);
        }
    }
}
