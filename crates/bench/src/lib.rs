//! Shared bench plumbing: the tier gate used by both the Criterion
//! benches and the quick-bench runner binary.
//!
//! Historically `cargo bench` read `XCLEAN_BENCH_QUICK` while the runner
//! only looked at its `--quick`/`--full` flags and silently ignored the
//! environment — two half-documented switches that could disagree. The
//! single documented flag is now:
//!
//! ```text
//! XCLEAN_BENCH_TIER=quick|full|large
//! ```
//!
//! * the Criterion benches shrink corpora/sample counts on `quick` (they
//!   have no large mode — realistic scale lives in the runner);
//! * the runner uses the env tier as its default and lets
//!   `--quick`/`--full`/`--large` override it, printing which tier ran;
//! * the legacy `XCLEAN_BENCH_QUICK=1` spelling is still honored (as
//!   `quick`) so existing CI invocations keep working.

/// Benchmark tier: how much work a bench invocation should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// CI-sized: hundreds of publications, seconds per bench.
    Quick,
    /// Paper-sized: thousands of publications, minutes per run.
    Full,
    /// Realistic scale: 100k publications over a synthesized vocabulary.
    Large,
}

impl Tier {
    /// Lowercase tier name, as printed in reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Quick => "quick",
            Tier::Full => "full",
            Tier::Large => "large",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reads the tier from the environment: `XCLEAN_BENCH_TIER` first, then
/// the legacy `XCLEAN_BENCH_QUICK=1` spelling. `None` means the caller's
/// default applies (Criterion benches default to full-size samples, the
/// runner defaults to quick).
pub fn tier_from_env() -> Option<Tier> {
    if let Ok(v) = std::env::var("XCLEAN_BENCH_TIER") {
        match v.trim().to_ascii_lowercase().as_str() {
            "quick" => return Some(Tier::Quick),
            "full" => return Some(Tier::Full),
            "large" => return Some(Tier::Large),
            "" => {}
            other => panic!("XCLEAN_BENCH_TIER={other:?}: expected quick|full|large"),
        }
    }
    let legacy = std::env::var_os("XCLEAN_BENCH_QUICK").is_some_and(|v| !v.is_empty() && v != "0");
    legacy.then_some(Tier::Quick)
}

/// True when the environment asks for the quick tier — the gate the
/// Criterion benches use to shrink corpora and sample counts.
pub fn quick_mode() -> bool {
    tier_from_env() == Some(Tier::Quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests mutate process state; run them in one test body so
    // the harness's parallelism can't interleave them.
    #[test]
    fn env_tier_parsing() {
        std::env::remove_var("XCLEAN_BENCH_TIER");
        std::env::remove_var("XCLEAN_BENCH_QUICK");
        assert_eq!(tier_from_env(), None);
        assert!(!quick_mode());

        std::env::set_var("XCLEAN_BENCH_QUICK", "1");
        assert_eq!(tier_from_env(), Some(Tier::Quick));
        assert!(quick_mode());
        std::env::set_var("XCLEAN_BENCH_QUICK", "0");
        assert_eq!(tier_from_env(), None);
        std::env::remove_var("XCLEAN_BENCH_QUICK");

        std::env::set_var("XCLEAN_BENCH_TIER", "large");
        assert_eq!(tier_from_env(), Some(Tier::Large));
        assert!(!quick_mode());
        // The unified flag wins over the legacy one.
        std::env::set_var("XCLEAN_BENCH_QUICK", "1");
        assert_eq!(tier_from_env(), Some(Tier::Large));
        std::env::set_var("XCLEAN_BENCH_TIER", "Quick");
        assert_eq!(tier_from_env(), Some(Tier::Quick));
        std::env::remove_var("XCLEAN_BENCH_TIER");
        std::env::remove_var("XCLEAN_BENCH_QUICK");
    }

    #[test]
    fn tier_names() {
        assert_eq!(Tier::Quick.name(), "quick");
        assert_eq!(Tier::Full.name(), "full");
        assert_eq!(Tier::Large.to_string(), "large");
    }
}
