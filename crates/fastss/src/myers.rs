//! Myers bit-parallel Levenshtein distance (single u64 block).
//!
//! Computes the exact unit-cost edit distance between a *pattern* of at
//! most 64 scalars and a text of any length in `O(|text|)` word
//! operations, using Hyyrö's formulation of Myers' 1999 algorithm: the
//! DP column is carried as two 64-bit vertical-delta bitvectors (`pv` set
//! where the column increases downward, `mv` where it decreases), updated
//! per text character with a dozen word operations and one carry-add.
//!
//! Because the recurrence is the standard Levenshtein DP expressed
//! bit-parallel — not an approximation — the result is *identical* to the
//! classic dynamic program, which is what lets
//! [`crate::edit_distance::edit_distance_within`] swap it in under the
//! engine's bit-identity suites. Patterns longer than 64 scalars fall
//! back to the banded DP in the caller.
//!
//! Candidate verification is the hot caller (`VariantIndex::query_within`
//! verifies every deletion-neighborhood hit), so the pattern equivalence
//! masks avoid heap allocation entirely: an ASCII pattern uses a stacked
//! 128-entry table, and a general Unicode pattern uses a stacked
//! association list (≤64 distinct scalars by construction).

/// Longest pattern (in Unicode scalars) the single-block fast path takes.
pub(crate) const MAX_PATTERN: usize = 64;

/// Exact Levenshtein distance with `pattern` as the bit-parallel column.
///
/// Requirements (checked in debug builds): `1 <= pattern.len() <= 64`.
/// The caller puts the *shorter* string in `pattern` — that both
/// maximizes the fast path's reach and minimizes per-step work.
pub(crate) fn distance(pattern: &[char], text: &[char]) -> usize {
    debug_assert!(!pattern.is_empty() && pattern.len() <= MAX_PATTERN);
    if pattern.iter().all(|&c| (c as u32) < 128) {
        // ASCII fast table: branch-free equivalence lookups.
        let mut peq = [0u64; 128];
        for (i, &c) in pattern.iter().enumerate() {
            peq[c as usize] |= 1 << i;
        }
        scan(pattern.len(), text, |c| {
            let u = c as u32;
            if u < 128 {
                peq[u as usize]
            } else {
                0
            }
        })
    } else {
        // General Unicode: a stacked association list of the pattern's
        // distinct scalars (≤64 entries, cache-resident).
        let mut keys = [('\0', 0u64); MAX_PATTERN];
        let mut n = 0usize;
        for (i, &c) in pattern.iter().enumerate() {
            match keys[..n].iter_mut().find(|(k, _)| *k == c) {
                Some((_, mask)) => *mask |= 1 << i,
                None => {
                    keys[n] = (c, 1 << i);
                    n += 1;
                }
            }
        }
        scan(pattern.len(), text, |c| {
            keys[..n]
                .iter()
                .find(|(k, _)| *k == c)
                .map_or(0, |&(_, mask)| mask)
        })
    }
}

/// The core scan: one Hyyrö step per text scalar. `eq(c)` returns the
/// pattern-equivalence mask for `c` (bit `i` set iff `pattern[i] == c`).
fn scan(m: usize, text: &[char], eq: impl Fn(char) -> u64) -> usize {
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    // Bits at positions ≥ m never influence bits < m (carries in the add
    // only propagate upward), so the unused high bits of pv are harmless.
    let hibit = 1u64 << (m - 1);
    for &c in text {
        let eqc = eq(c);
        let xv = eqc | mv;
        let xh = (((eqc & pv).wrapping_add(pv)) ^ pv) | eqc;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & hibit != 0 {
            score += 1;
        }
        if mh & hibit != 0 {
            score -= 1;
        }
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    fn d(a: &str, b: &str) -> usize {
        distance(&chars(a), &chars(b))
    }

    #[test]
    fn classic_cases() {
        assert_eq!(d("kitten", "sitting"), 3);
        assert_eq!(d("sitting", "kitten"), 3);
        assert_eq!(d("abc", "abc"), 0);
        assert_eq!(d("a", ""), 1);
        assert_eq!(d("insurance", "instance"), 2);
        assert_eq!(d("icdt", "icde"), 1);
    }

    #[test]
    fn unicode_patterns_use_the_association_list() {
        assert_eq!(d("schütze", "schutze"), 1);
        assert_eq!(d("一二三", "一三"), 1);
        assert_eq!(d("αβγ", "xyz"), 3);
    }

    #[test]
    fn full_64_char_pattern() {
        let a: String = "a".repeat(64);
        let mut b = a.clone();
        b.replace_range(0..1, "b");
        assert_eq!(d(&a, &a), 0);
        assert_eq!(d(&a, &b), 1);
        // Text much longer than the pattern: 64 a's vs 100 a's.
        let long: String = "a".repeat(100);
        assert_eq!(d(&a, &long), 36);
    }

    #[test]
    fn ascii_text_against_unicode_pattern_and_vice_versa() {
        // Text scalars outside the pattern's alphabet must map to Eq=0.
        assert_eq!(d("abc", "äbc"), 1);
        assert_eq!(d("äbc", "abc"), 1);
    }
}
