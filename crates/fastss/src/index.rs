//! The FastSS variant index (§V-A).
//!
//! Builds, offline, an index over the vocabulary's ε-deletion
//! neighbourhoods; at query time the ε-deletion neighbourhood of the query
//! keyword is probed to obtain candidate words, which are verified with a
//! banded edit-distance computation.
//!
//! Long tokens are handled by a *partitioned* scheme: instead of the
//! exponential deletion neighbourhood, a long word is split into ε+1
//! contiguous segments; if `ed(q, w) ≤ ε` then at least one segment of `w`
//! occurs verbatim in `q`, shifted by at most ε (the pigeonhole principle).
//! Segments are indexed exactly, keeping space linear in word length.

use std::collections::HashMap;

use crate::edit_distance::edit_distance_within;
use crate::neighborhood::{for_each_deletion_signature, signature_hash};

/// Probe maps are keyed by 64-bit FNV signature hashes
/// ([`signature_hash`]) instead of owned member strings: probing becomes
/// pure integer work (no per-signature `String`, no byte-wise SipHash).
/// Hash collisions can only *merge* buckets — every true member's hash is
/// still indexed and probed — so the candidate set is a superset of the
/// string-keyed scheme's and the exact verification step yields identical
/// results. The keys are already well-mixed, so the maps use them
/// verbatim as bucket hashes.
#[derive(Debug, Clone, Default)]
struct SigHashState;

impl std::hash::BuildHasher for SigHashState {
    type Hasher = SigIdentityHasher;
    fn build_hasher(&self) -> SigIdentityHasher {
        SigIdentityHasher(0)
    }
}

#[derive(Debug)]
struct SigIdentityHasher(u64);

impl std::hash::Hasher for SigIdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Defensive fallback (keys are u64, so write_u64 is the hot path).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type SigMap = HashMap<u64, Vec<u32>, SigHashState>;

/// Key of one long-word segment probe: the segment's signature hash mixed
/// with its ordinal and the word's character length (the same tuple the
/// string-keyed scheme used, collapsed to 64 bits).
fn long_key(seg: &[char], ord: u8, wlen: u16) -> u64 {
    let mut h = signature_hash(seg);
    for b in std::iter::once(ord).chain(wlen.to_le_bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A vocabulary word matching a query keyword within the edit threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariantMatch {
    /// Index of the word in the vocabulary the index was built from.
    pub word: u32,
    /// Exact edit distance to the query keyword.
    pub distance: u32,
}

/// Configuration for [`VariantIndex`].
#[derive(Debug, Clone)]
pub struct VariantIndexConfig {
    /// Maximum number of edit errors ε.
    pub epsilon: usize,
    /// Words longer than this many characters use the partitioned scheme
    /// (the paper's `l_p` space/time tuning knob).
    pub partition_threshold: usize,
}

impl Default for VariantIndexConfig {
    fn default() -> Self {
        VariantIndexConfig {
            epsilon: 2,
            partition_threshold: 14,
        }
    }
}

/// FastSS index over a fixed vocabulary.
#[derive(Debug)]
pub struct VariantIndex {
    config: VariantIndexConfig,
    words: Vec<String>,
    /// Deletion-signature hash → ids of short words having a signature
    /// with that hash (see [`SigHashState`] on why hashing is lossless
    /// for query results).
    short_map: SigMap,
    /// [`long_key`] of (segment, ordinal, word char-length) → ids of long
    /// words with that exact segment.
    long_map: SigMap,
    /// Char lengths present among long words (drives query-side probing).
    long_lengths: Vec<u16>,
}

impl VariantIndex {
    /// Builds the index over `words`. Word ids are their positions in the
    /// input order.
    pub fn build<S: AsRef<str>>(words: &[S], config: VariantIndexConfig) -> Self {
        let eps = config.epsilon;
        let mut short_map = SigMap::default();
        let mut long_map = SigMap::default();
        let mut long_lengths = Vec::new();
        let owned: Vec<String> = words.iter().map(|w| w.as_ref().to_string()).collect();
        for (id, w) in owned.iter().enumerate() {
            let id = id as u32;
            let len = w.chars().count();
            if len <= config.partition_threshold {
                for_each_deletion_signature(w, eps, |h| {
                    let ids = short_map.entry(h).or_default();
                    // Deletion sets of one word can repeat a member (and
                    // so its hash); ids arrive in order, so duplicates
                    // are always adjacent.
                    if ids.last() != Some(&id) {
                        ids.push(id);
                    }
                });
            } else {
                let len16 = len.min(u16::MAX as usize) as u16;
                if !long_lengths.contains(&len16) {
                    long_lengths.push(len16);
                }
                let chars: Vec<char> = w.chars().collect();
                for (ord, (start, seg_len)) in
                    segment_spans(chars.len(), eps + 1).into_iter().enumerate()
                {
                    let key = long_key(&chars[start..start + seg_len], ord as u8, len16);
                    let ids = long_map.entry(key).or_default();
                    if ids.last() != Some(&id) {
                        ids.push(id);
                    }
                }
            }
        }
        long_lengths.sort_unstable();
        VariantIndex {
            config,
            words: owned,
            short_map,
            long_map,
            long_lengths,
        }
    }

    /// The edit threshold the index was built for.
    pub fn epsilon(&self) -> usize {
        self.config.epsilon
    }

    /// The indexed vocabulary.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Number of signature entries (diagnostic; the paper's space cost).
    pub fn signature_count(&self) -> usize {
        self.short_map.len() + self.long_map.len()
    }

    /// Finds all vocabulary words within edit distance ε of `query`
    /// (`var_ε(q)` in the paper), verified and with exact distances.
    /// Results are sorted by (distance, word id).
    pub fn query(&self, query: &str) -> Vec<VariantMatch> {
        self.query_within(query, self.config.epsilon)
    }

    /// Like [`Self::query`] but with a per-call threshold
    /// `max_ed ≤ ε` (useful for CLEAN query handling and ablations).
    pub fn query_within(&self, query: &str, max_ed: usize) -> Vec<VariantMatch> {
        let max_ed = max_ed.min(self.config.epsilon);
        let mut candidates: Vec<u32> = Vec::new();

        // Short-word path: probe the query's own deletion neighbourhood
        // (by signature hash — no member strings are materialised).
        for_each_deletion_signature(query, self.config.epsilon, |h| {
            if let Some(ids) = self.short_map.get(&h) {
                candidates.extend_from_slice(ids);
            }
        });

        // Long-word path: for each plausible long-word length, compute the
        // deterministic segmentation and probe shifted query substrings.
        let qchars: Vec<char> = query.chars().collect();
        let qlen = qchars.len();
        for &wlen in &self.long_lengths {
            let wlen_usize = wlen as usize;
            if wlen_usize.abs_diff(qlen) > max_ed {
                continue;
            }
            for (ord, (start, seg_len)) in segment_spans(wlen_usize, self.config.epsilon + 1)
                .into_iter()
                .enumerate()
            {
                let lo = start.saturating_sub(max_ed);
                let hi = (start + max_ed).min(qlen.saturating_sub(seg_len));
                for qstart in lo..=hi {
                    if qstart + seg_len > qlen {
                        break;
                    }
                    let key = long_key(&qchars[qstart..qstart + seg_len], ord as u8, wlen);
                    if let Some(ids) = self.long_map.get(&key) {
                        candidates.extend_from_slice(ids);
                    }
                }
            }
        }

        candidates.sort_unstable();
        candidates.dedup();

        let mut out: Vec<VariantMatch> = candidates
            .into_iter()
            .filter_map(|id| {
                edit_distance_within(query, &self.words[id as usize], max_ed).map(|d| {
                    VariantMatch {
                        word: id,
                        distance: d as u32,
                    }
                })
            })
            .collect();
        out.sort_unstable_by_key(|m| (m.distance, m.word));
        out
    }
}

/// Returns `(start, len)` spans of the deterministic segmentation of a
/// word of `len` characters into `parts` segments. Must agree between index
/// and query sides.
fn segment_spans(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let l = base + usize::from(i < rem);
        out.push((start, l));
        start += l;
    }
    out
}

/// A brute-force variant finder: scans the whole vocabulary with the banded
/// edit-distance test. Serves as the correctness oracle for property tests
/// and as the baseline in the FastSS benchmark.
#[derive(Debug)]
pub struct NaiveVariantFinder {
    words: Vec<String>,
}

impl NaiveVariantFinder {
    /// Wraps a vocabulary for brute-force scanning.
    pub fn new<S: AsRef<str>>(words: &[S]) -> Self {
        NaiveVariantFinder {
            words: words.iter().map(|w| w.as_ref().to_string()).collect(),
        }
    }

    /// Scans every word, returning verified matches within `max_ed`.
    pub fn query(&self, query: &str, max_ed: usize) -> Vec<VariantMatch> {
        let mut out: Vec<VariantMatch> = self
            .words
            .iter()
            .enumerate()
            .filter_map(|(id, w)| {
                edit_distance_within(query, w, max_ed).map(|d| VariantMatch {
                    word: id as u32,
                    distance: d as u32,
                })
            })
            .collect();
        out.sort_unstable_by_key(|m| (m.distance, m.word));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vocab() -> Vec<&'static str> {
        vec![
            "tree",
            "trees",
            "trie",
            "icde",
            "icdt",
            "health",
            "insurance",
            "instance",
            "architecture",
            "keyword",
            "search",
            "database",
            "reconfigurable", // long: partitioned at default threshold 14? len 14 -> short
            "internationalization", // definitely long
            "misunderstanding",
        ]
    }

    #[test]
    fn finds_paper_example_variants() {
        let vocab = sample_vocab();
        let idx = VariantIndex::build(
            &vocab,
            VariantIndexConfig {
                epsilon: 1,
                partition_threshold: 14,
            },
        );
        let hits: Vec<&str> = idx
            .query("tree")
            .iter()
            .map(|m| vocab[m.word as usize])
            .collect();
        assert_eq!(hits, vec!["tree", "trees", "trie"]);
        let hits: Vec<&str> = idx
            .query("icdt")
            .iter()
            .map(|m| vocab[m.word as usize])
            .collect();
        assert_eq!(hits, vec!["icdt", "icde"]);
    }

    #[test]
    fn distances_are_exact() {
        let vocab = sample_vocab();
        let idx = VariantIndex::build(&vocab, VariantIndexConfig::default());
        for m in idx.query("helth") {
            assert_eq!(
                m.distance as usize,
                crate::edit_distance::edit_distance("helth", vocab[m.word as usize])
            );
        }
    }

    #[test]
    fn long_words_found_via_partitioning() {
        let vocab = sample_vocab();
        let idx = VariantIndex::build(
            &vocab,
            VariantIndexConfig {
                epsilon: 2,
                partition_threshold: 10,
            },
        );
        // One substitution inside a long word.
        let hits: Vec<&str> = idx
            .query("internationalizatiom")
            .iter()
            .map(|m| vocab[m.word as usize])
            .collect();
        assert!(hits.contains(&"internationalization"));
        // Deletion in a long word.
        let hits: Vec<&str> = idx
            .query("misunderstanding")
            .iter()
            .map(|m| vocab[m.word as usize])
            .collect();
        assert!(hits.contains(&"misunderstanding"));
    }

    #[test]
    fn agrees_with_naive_oracle() {
        let vocab = sample_vocab();
        let idx = VariantIndex::build(
            &vocab,
            VariantIndexConfig {
                epsilon: 2,
                partition_threshold: 8,
            },
        );
        let naive = NaiveVariantFinder::new(&vocab);
        for q in [
            "tree",
            "tre",
            "treeees",
            "icd",
            "helth",
            "architecture",
            "architectur",
            "misunderstandin",
            "internationalisation",
            "xyzzy",
            "searhc",
        ] {
            assert_eq!(idx.query(q), naive.query(q, 2), "query {q}");
        }
    }

    #[test]
    fn query_within_tightens_threshold() {
        let vocab = sample_vocab();
        let idx = VariantIndex::build(&vocab, VariantIndexConfig::default());
        let strict = idx.query_within("tre", 0);
        assert!(strict.is_empty());
        let loose = idx.query_within("tre", 1);
        assert!(!loose.is_empty());
        assert!(loose.iter().all(|m| m.distance <= 1));
    }

    #[test]
    fn empty_vocab_and_empty_query() {
        let idx = VariantIndex::build::<&str>(&[], VariantIndexConfig::default());
        assert!(idx.query("anything").is_empty());
        let vocab = ["ab"];
        let idx = VariantIndex::build(
            &vocab,
            VariantIndexConfig {
                epsilon: 2,
                partition_threshold: 14,
            },
        );
        let hits = idx.query("");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].distance, 2);
    }

    #[test]
    fn segment_spans_cover_word_exactly() {
        for len in 1..40 {
            for parts in 1..5 {
                let spans = segment_spans(len, parts);
                let mut pos = 0;
                for (s, l) in &spans {
                    assert_eq!(*s, pos);
                    assert!(*l >= 1, "len={len} parts={parts}");
                    pos += l;
                }
                assert_eq!(pos, len);
            }
        }
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The index must return exactly what the naive scan returns, for
        /// any vocabulary and query, across partition thresholds.
        #[test]
        fn index_equals_oracle(
            vocab in proptest::collection::vec("[a-c]{1,18}", 1..30),
            query in "[a-c]{0,18}",
            threshold in 4usize..16,
        ) {
            let idx = VariantIndex::build(&vocab, VariantIndexConfig {
                epsilon: 2,
                partition_threshold: threshold,
            });
            let naive = NaiveVariantFinder::new(&vocab);
            prop_assert_eq!(idx.query(&query), naive.query(&query, 2));
        }
    }
}
