//! American Soundex phonetic encoding.
//!
//! §VI-A of the paper lists Soundex as the canonical way to extend the
//! variant set `var(q)` with *cognitive* (sound-alike) errors. This module
//! implements the standard (NARA) algorithm: the first letter, followed by
//! three digits coding the consonant classes, with the
//! adjacent-same-code, vowel-separator, and `h`/`w` rules.

/// A four-character Soundex code such as `R163`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SoundexCode(pub [u8; 4]);

impl std::fmt::Display for SoundexCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &b in &self.0 {
            write!(f, "{}", b as char)?;
        }
        Ok(())
    }
}

fn digit(c: u8) -> Option<u8> {
    match c {
        b'b' | b'f' | b'p' | b'v' => Some(b'1'),
        b'c' | b'g' | b'j' | b'k' | b'q' | b's' | b'x' | b'z' => Some(b'2'),
        b'd' | b't' => Some(b'3'),
        b'l' => Some(b'4'),
        b'm' | b'n' => Some(b'5'),
        b'r' => Some(b'6'),
        _ => None,
    }
}

/// Encodes a word. Non-ASCII-alphabetic characters are skipped; returns
/// `None` for words without any ASCII letter.
pub fn soundex(word: &str) -> Option<SoundexCode> {
    let letters: Vec<u8> = word
        .bytes()
        .filter(|b| b.is_ascii_alphabetic())
        .map(|b| b.to_ascii_lowercase())
        .collect();
    let &first = letters.first()?;
    let mut code = [b'0'; 4];
    code[0] = first.to_ascii_uppercase();
    let mut out = 1;
    // The code of the first letter matters for the adjacency rule.
    let mut prev = digit(first);
    for &c in &letters[1..] {
        if out == 4 {
            break;
        }
        match c {
            b'h' | b'w' => {
                // h and w are transparent: they do NOT reset `prev`.
                continue;
            }
            b'a' | b'e' | b'i' | b'o' | b'u' | b'y' => {
                // Vowels separate: identical codes across a vowel repeat.
                prev = None;
            }
            _ => {
                let d = digit(c);
                if let Some(d) = d {
                    if Some(d) != prev {
                        code[out] = d;
                        out += 1;
                    }
                }
                prev = d;
            }
        }
    }
    Some(SoundexCode(code))
}

/// `true` iff the two words share a Soundex code.
pub fn sounds_like(a: &str, b: &str) -> bool {
    match (soundex(a), soundex(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(w: &str) -> String {
        soundex(w).unwrap().to_string()
    }

    /// The five canonical NARA examples.
    #[test]
    fn nara_reference_codes() {
        assert_eq!(code("Robert"), "R163");
        assert_eq!(code("Rupert"), "R163");
        assert_eq!(code("Ashcraft"), "A261"); // h/w transparency
        assert_eq!(code("Ashcroft"), "A261");
        assert_eq!(code("Tymczak"), "T522"); // vowel separation
        assert_eq!(code("Pfister"), "P236"); // adjacent same-code collapse
        assert_eq!(code("Honeyman"), "H555");
    }

    #[test]
    fn padding_and_truncation() {
        assert_eq!(code("Lee"), "L000");
        assert_eq!(code("Washington"), "W252");
        assert_eq!(code("a"), "A000");
    }

    #[test]
    fn sounds_like_pairs() {
        assert!(sounds_like("smith", "smyth"));
        assert!(sounds_like("robert", "rupert"));
        assert!(!sounds_like("robert", "smith"));
        assert!(!sounds_like("", "smith"));
    }

    #[test]
    fn case_and_punctuation_insensitive() {
        assert_eq!(code("O'Brien"), code("obrien"));
        assert_eq!(code("SMITH"), code("smith"));
    }

    #[test]
    fn non_ascii_words() {
        // Pure non-ASCII yields None; mixed uses the ASCII letters.
        assert!(soundex("日本語").is_none());
        assert!(soundex("schütze").is_some());
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn codes_are_well_formed(w in "[a-zA-Z]{1,20}") {
            let c = soundex(&w).unwrap();
            prop_assert!(c.0[0].is_ascii_uppercase());
            for &d in &c.0[1..] {
                prop_assert!(d.is_ascii_digit());
            }
        }

        #[test]
        fn encoding_is_deterministic_and_case_insensitive(w in "[a-zA-Z]{1,15}") {
            prop_assert_eq!(soundex(&w), soundex(&w.to_uppercase()));
        }
    }
}
