//! Levenshtein edit distance with threshold-aware (banded) computation.
//!
//! The paper's error model (§IV-B1) and variant generation (§V-A) are both
//! defined over the standard edit distance with unit-cost insertions,
//! deletions, and substitutions.
//!
//! Dispatch: when the shorter string fits in one machine word (≤64
//! scalars — every realistic vocabulary term), both entry points use the
//! Myers bit-parallel scan in [`crate::myers`], which is exact and
//! allocation-free; longer inputs fall back to the classic rolling-row /
//! banded DP below. Strings of ≤64 scalars are also collected into stack
//! buffers, so the candidate-verification hot path
//! ([`edit_distance_within`] under `VariantIndex::query_within`) performs
//! zero heap allocations.

use crate::myers;

/// Collects `s` into a stack buffer when it has ≤64 scalars (the common
/// case for vocabulary terms), falling back to the heap above that.
fn with_chars<R>(s: &str, f: impl FnOnce(&[char]) -> R) -> R {
    let mut stack = ['\0'; myers::MAX_PATTERN];
    let mut n = 0;
    for c in s.chars() {
        if n == myers::MAX_PATTERN {
            let v: Vec<char> = s.chars().collect();
            return f(&v);
        }
        stack[n] = c;
        n += 1;
    }
    f(&stack[..n])
}

/// Computes the full Levenshtein distance between `a` and `b`.
///
/// Runs in `O(|a|·|b|)` time and `O(min(|a|,|b|))` space (bit-parallel:
/// `O(|long|)` words). Operates on Unicode scalar values, so
/// `ed("schütze", "schutze") == 1`.
pub fn edit_distance(a: &str, b: &str) -> usize {
    with_chars(a, |a| with_chars(b, |b| edit_distance_chars(a, b)))
}

fn edit_distance_chars(a: &[char], b: &[char]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    if short.len() <= myers::MAX_PATTERN {
        return myers::distance(short, long);
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Tests whether `ed(a, b) <= max`, using a banded dynamic program that
/// runs in `O(max · min(|a|,|b|))` time. Returns the exact distance when it
/// is within the bound, `None` otherwise.
pub fn edit_distance_within(a: &str, b: &str, max: usize) -> Option<usize> {
    with_chars(a, |a| {
        with_chars(b, |b| edit_distance_within_chars(a, b, max))
    })
}

fn edit_distance_within_chars(a: &[char], b: &[char], max: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() - short.len() > max {
        return None;
    }
    if short.is_empty() {
        return Some(long.len());
    }
    if short.len() <= myers::MAX_PATTERN {
        // The bit-parallel scan computes the exact distance in O(|long|)
        // word steps with no allocation — faster than maintaining the
        // band even though it cannot early-exit. (The length filter above
        // already rejected the cheap cases.)
        let d = myers::distance(short, long);
        return (d <= max).then_some(d);
    }
    const BIG: usize = usize::MAX / 2;
    // Band of width 2*max+1 around the diagonal.
    let n = short.len();
    let mut prev = vec![BIG; n + 1];
    let mut cur = vec![BIG; n + 1];
    for (j, p) in prev.iter_mut().enumerate().take(max.min(n) + 1) {
        *p = j;
    }
    for (i, &lc) in long.iter().enumerate() {
        let row = i + 1;
        let lo = row.saturating_sub(max);
        let hi = (row + max).min(n);
        if lo > hi {
            return None;
        }
        cur[lo.saturating_sub(1)] = BIG;
        if lo == 0 {
            cur[0] = row;
        } else {
            cur[lo - 1] = BIG;
        }
        let mut best = BIG;
        let start = lo.max(1);
        for j in start..=hi {
            let cost = usize::from(lc != short[j - 1]);
            let diag = prev[j - 1].saturating_add(cost);
            let up = prev[j].saturating_add(1);
            let left = cur[j - 1].saturating_add(1);
            let v = diag.min(up).min(left);
            cur[j] = v;
            best = best.min(v);
        }
        if lo == 0 {
            best = best.min(cur[0]);
        }
        if best > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[n];
    (d <= max).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("insurance", "instance"), 2);
        assert_eq!(edit_distance("icdt", "icde"), 1);
        assert_eq!(edit_distance("tree", "trie"), 1);
        assert_eq!(edit_distance("tree", "trees"), 1);
        assert_eq!(edit_distance("hinirch", "hinrich"), 2);
    }

    #[test]
    fn unicode_counts_scalars() {
        assert_eq!(edit_distance("schütze", "schutze"), 1);
        assert_eq!(edit_distance("schütze", "schuetze"), 2);
    }

    #[test]
    fn within_agrees_with_full() {
        let words = [
            "",
            "a",
            "ab",
            "tree",
            "trie",
            "trees",
            "icde",
            "icdt",
            "health",
            "instance",
            "insurance",
            "architecture",
            "archetecture",
        ];
        for x in words {
            for y in words {
                let full = edit_distance(x, y);
                for max in 0..5 {
                    let w = edit_distance_within(x, y, max);
                    if full <= max {
                        assert_eq!(w, Some(full), "{x} vs {y} max {max}");
                    } else {
                        assert_eq!(w, None, "{x} vs {y} max {max}");
                    }
                }
            }
        }
    }

    #[test]
    fn length_filter_short_circuits() {
        assert_eq!(edit_distance_within("ab", "abcdefgh", 2), None);
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use proptest::prelude::*;

    /// Textbook Wagner–Fischer reference: the full `O(n·m)` matrix with
    /// no banding, rolling rows, or argument swapping. Deliberately the
    /// dumbest correct implementation, as the oracle for both production
    /// variants.
    fn reference_dp(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let mut m = vec![vec![0usize; b.len() + 1]; a.len() + 1];
        for (i, row) in m.iter_mut().enumerate() {
            row[0] = i;
        }
        for (j, cell) in m[0].iter_mut().enumerate() {
            *cell = j;
        }
        for i in 1..=a.len() {
            for j in 1..=b.len() {
                let cost = usize::from(a[i - 1] != b[j - 1]);
                m[i][j] = (m[i - 1][j - 1] + cost)
                    .min(m[i - 1][j] + 1)
                    .min(m[i][j - 1] + 1);
            }
        }
        m[a.len()][b.len()]
    }

    proptest! {
        /// Production distance equals the reference DP on random ASCII,
        /// and the banded variant agrees for every threshold.
        #[test]
        fn matches_reference_dp_ascii(a in "[a-h]{0,12}", b in "[a-h]{0,12}", max in 0usize..6) {
            let expect = reference_dp(&a, &b);
            prop_assert_eq!(edit_distance(&a, &b), expect);
            let banded = edit_distance_within(&a, &b, max);
            if expect <= max {
                prop_assert_eq!(banded, Some(expect));
            } else {
                prop_assert_eq!(banded, None);
            }
        }

        /// Same agreement on multi-byte UTF-8: Greek and CJK scalars mixed
        /// with ASCII, so byte length and char length diverge.
        #[test]
        fn matches_reference_dp_utf8(
            a_greek in proptest::collection::vec(proptest::char::range('α', 'ω'), 0..5),
            a_ascii in proptest::collection::vec(proptest::char::range('a', 'f'), 0..5),
            b_cjk in proptest::collection::vec(proptest::char::range('一', '十'), 0..5),
            b_ascii in proptest::collection::vec(proptest::char::range('a', 'f'), 0..5),
            max in 0usize..5,
        ) {
            // Interleave so multi-byte scalars appear at arbitrary offsets.
            let interleave = |x: &[char], y: &[char]| -> String {
                let mut s = String::new();
                let mut xi = x.iter();
                let mut yi = y.iter();
                loop {
                    match (xi.next(), yi.next()) {
                        (None, None) => break,
                        (cx, cy) => {
                            if let Some(&c) = cx { s.push(c); }
                            if let Some(&c) = cy { s.push(c); }
                        }
                    }
                }
                s
            };
            let a = interleave(&a_greek, &a_ascii);
            let b = interleave(&b_cjk, &b_ascii);
            let expect = reference_dp(&a, &b);
            prop_assert_eq!(edit_distance(&a, &b), expect);
            prop_assert_eq!(edit_distance(&b, &a), expect);
            let banded = edit_distance_within(&a, &b, max);
            if expect <= max {
                prop_assert_eq!(banded, Some(expect));
            } else {
                prop_assert_eq!(banded, None);
            }
        }

        /// Myers bit-parallel vs the reference DP across the 64-scalar
        /// block boundary: interleaved 1-, 2-, and 3-byte scalars (so
        /// char indices and byte offsets diverge) at lengths up to ~90,
        /// crossing from the single-block fast path (≤64) into the
        /// classic-DP fallback (>64). `edit_distance_within` must agree
        /// at every threshold, including thresholds near the length gap.
        #[test]
        fn myers_matches_reference_dp_across_block_boundary(
            a_ascii in proptest::collection::vec(proptest::char::range('a', 'e'), 0..31),
            a_greek in proptest::collection::vec(proptest::char::range('α', 'ε'), 0..31),
            a_cjk in proptest::collection::vec(proptest::char::range('一', '五'), 0..31),
            b_ascii in proptest::collection::vec(proptest::char::range('a', 'e'), 0..31),
            b_greek in proptest::collection::vec(proptest::char::range('α', 'ε'), 0..31),
            b_cjk in proptest::collection::vec(proptest::char::range('一', '五'), 0..31),
            max in 0usize..95,
        ) {
            let interleave = |x: &[char], y: &[char], z: &[char]| -> String {
                let mut s = String::new();
                let n = x.len().max(y.len()).max(z.len());
                for i in 0..n {
                    if let Some(&c) = x.get(i) { s.push(c); }
                    if let Some(&c) = y.get(i) { s.push(c); }
                    if let Some(&c) = z.get(i) { s.push(c); }
                }
                s
            };
            let a = interleave(&a_ascii, &a_greek, &a_cjk);
            let b = interleave(&b_ascii, &b_greek, &b_cjk);
            let expect = reference_dp(&a, &b);
            prop_assert_eq!(edit_distance(&a, &b), expect);
            prop_assert_eq!(edit_distance(&b, &a), expect);
            let within = edit_distance_within(&a, &b, max);
            if expect <= max {
                prop_assert_eq!(within, Some(expect));
            } else {
                prop_assert_eq!(within, None);
            }
        }

        /// A pattern at exactly 64 scalars (the widest single Myers
        /// block, sign-bit arithmetic included) against texts both
        /// shorter and much longer.
        #[test]
        fn myers_full_block_edge(
            text in proptest::collection::vec(proptest::char::range('a', 'd'), 0..150),
            pattern in proptest::collection::vec(proptest::char::range('a', 'd'), 64..65),
        ) {
            let p: String = pattern.into_iter().collect();
            let t: String = text.into_iter().collect();
            prop_assert_eq!(edit_distance(&p, &t), reference_dp(&p, &t));
        }

        #[test]
        fn symmetric(a in "[a-c]{0,8}", b in "[a-c]{0,8}") {
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        }

        #[test]
        fn identity(a in "[a-z]{0,10}") {
            prop_assert_eq!(edit_distance(&a, &a), 0);
        }

        #[test]
        fn triangle_inequality(a in "[a-c]{0,6}", b in "[a-c]{0,6}", c in "[a-c]{0,6}") {
            let ab = edit_distance(&a, &b);
            let bc = edit_distance(&b, &c);
            let ac = edit_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn banded_matches_full(a in "[a-d]{0,10}", b in "[a-d]{0,10}", max in 0usize..4) {
            let full = edit_distance(&a, &b);
            let banded = edit_distance_within(&a, &b, max);
            if full <= max {
                prop_assert_eq!(banded, Some(full));
            } else {
                prop_assert_eq!(banded, None);
            }
        }

        #[test]
        fn single_edit_is_distance_one(a in "[a-z]{1,10}", pos in 0usize..10, ch in proptest::char::range('a', 'z')) {
            let chars: Vec<char> = a.chars().collect();
            let pos = pos % chars.len();
            // substitution
            let mut sub = chars.clone();
            sub[pos] = ch;
            let sub: String = sub.into_iter().collect();
            prop_assert!(edit_distance(&a, &sub) <= 1);
            // deletion
            let mut del = chars.clone();
            del.remove(pos);
            let del: String = del.into_iter().collect();
            prop_assert_eq!(edit_distance(&a, &del), 1);
        }
    }
}
