//! Levenshtein edit distance with threshold-aware (banded) computation.
//!
//! The paper's error model (§IV-B1) and variant generation (§V-A) are both
//! defined over the standard edit distance with unit-cost insertions,
//! deletions, and substitutions.

/// Computes the full Levenshtein distance between `a` and `b`.
///
/// Runs in `O(|a|·|b|)` time and `O(min(|a|,|b|))` space. Operates on
/// Unicode scalar values, so `ed("schütze", "schutze") == 1`.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    edit_distance_chars(&a, &b)
}

fn edit_distance_chars(a: &[char], b: &[char]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Tests whether `ed(a, b) <= max`, using a banded dynamic program that
/// runs in `O(max · min(|a|,|b|))` time. Returns the exact distance when it
/// is within the bound, `None` otherwise.
pub fn edit_distance_within(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    edit_distance_within_chars(&a, &b, max)
}

fn edit_distance_within_chars(a: &[char], b: &[char], max: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() - short.len() > max {
        return None;
    }
    if short.is_empty() {
        return Some(long.len());
    }
    const BIG: usize = usize::MAX / 2;
    // Band of width 2*max+1 around the diagonal.
    let n = short.len();
    let mut prev = vec![BIG; n + 1];
    let mut cur = vec![BIG; n + 1];
    for (j, p) in prev.iter_mut().enumerate().take(max.min(n) + 1) {
        *p = j;
    }
    for (i, &lc) in long.iter().enumerate() {
        let row = i + 1;
        let lo = row.saturating_sub(max);
        let hi = (row + max).min(n);
        if lo > hi {
            return None;
        }
        cur[lo.saturating_sub(1)] = BIG;
        if lo == 0 {
            cur[0] = row;
        } else {
            cur[lo - 1] = BIG;
        }
        let mut best = BIG;
        let start = lo.max(1);
        for j in start..=hi {
            let cost = usize::from(lc != short[j - 1]);
            let diag = prev[j - 1].saturating_add(cost);
            let up = prev[j].saturating_add(1);
            let left = cur[j - 1].saturating_add(1);
            let v = diag.min(up).min(left);
            cur[j] = v;
            best = best.min(v);
        }
        if lo == 0 {
            best = best.min(cur[0]);
        }
        if best > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[n];
    (d <= max).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("insurance", "instance"), 2);
        assert_eq!(edit_distance("icdt", "icde"), 1);
        assert_eq!(edit_distance("tree", "trie"), 1);
        assert_eq!(edit_distance("tree", "trees"), 1);
        assert_eq!(edit_distance("hinirch", "hinrich"), 2);
    }

    #[test]
    fn unicode_counts_scalars() {
        assert_eq!(edit_distance("schütze", "schutze"), 1);
        assert_eq!(edit_distance("schütze", "schuetze"), 2);
    }

    #[test]
    fn within_agrees_with_full() {
        let words = [
            "", "a", "ab", "tree", "trie", "trees", "icde", "icdt", "health",
            "instance", "insurance", "architecture", "archetecture",
        ];
        for x in words {
            for y in words {
                let full = edit_distance(x, y);
                for max in 0..5 {
                    let w = edit_distance_within(x, y, max);
                    if full <= max {
                        assert_eq!(w, Some(full), "{x} vs {y} max {max}");
                    } else {
                        assert_eq!(w, None, "{x} vs {y} max {max}");
                    }
                }
            }
        }
    }

    #[test]
    fn length_filter_short_circuits() {
        assert_eq!(edit_distance_within("ab", "abcdefgh", 2), None);
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn symmetric(a in "[a-c]{0,8}", b in "[a-c]{0,8}") {
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        }

        #[test]
        fn identity(a in "[a-z]{0,10}") {
            prop_assert_eq!(edit_distance(&a, &a), 0);
        }

        #[test]
        fn triangle_inequality(a in "[a-c]{0,6}", b in "[a-c]{0,6}", c in "[a-c]{0,6}") {
            let ab = edit_distance(&a, &b);
            let bc = edit_distance(&b, &c);
            let ac = edit_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn banded_matches_full(a in "[a-d]{0,10}", b in "[a-d]{0,10}", max in 0usize..4) {
            let full = edit_distance(&a, &b);
            let banded = edit_distance_within(&a, &b, max);
            if full <= max {
                prop_assert_eq!(banded, Some(full));
            } else {
                prop_assert_eq!(banded, None);
            }
        }

        #[test]
        fn single_edit_is_distance_one(a in "[a-z]{1,10}", pos in 0usize..10, ch in proptest::char::range('a', 'z')) {
            let chars: Vec<char> = a.chars().collect();
            let pos = pos % chars.len();
            // substitution
            let mut sub = chars.clone();
            sub[pos] = ch;
            let sub: String = sub.into_iter().collect();
            prop_assert!(edit_distance(&a, &sub) <= 1);
            // deletion
            let mut del = chars.clone();
            del.remove(pos);
            let del: String = del.into_iter().collect();
            prop_assert_eq!(edit_distance(&a, &del), 1);
        }
    }
}
