//! # xclean-fastss
//!
//! Approximate string matching under edit-distance constraints, as used by
//! XClean's variant generation step (§V-A of the paper): a partitioned
//! FastSS index built over the vocabulary's ε-deletion neighbourhoods, plus
//! a Myers bit-parallel Levenshtein verifier (≤64-scalar fast path with a
//! classic banded-DP fallback).
//!
//! ```
//! use xclean_fastss::{VariantIndex, VariantIndexConfig};
//! let vocab = ["tree", "trees", "trie", "icde", "icdt"];
//! let idx = VariantIndex::build(&vocab, VariantIndexConfig { epsilon: 1, ..Default::default() });
//! let vars: Vec<&str> = idx.query("tree").iter().map(|m| vocab[m.word as usize]).collect();
//! assert_eq!(vars, ["tree", "trees", "trie"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edit_distance;
pub mod index;
pub mod myers;
pub mod neighborhood;
pub mod soundex;

pub use edit_distance::{edit_distance, edit_distance_within};
pub use index::{NaiveVariantFinder, VariantIndex, VariantIndexConfig, VariantMatch};
pub use neighborhood::{deletion_neighborhood, neighborhood_bound};
pub use soundex::{soundex, sounds_like, SoundexCode};
