//! ε-deletion neighbourhoods (the FastSS signature scheme).
//!
//! The deletion neighbourhood of a word is the set of strings obtained by
//! deleting up to ε characters (§V-A). Two words are within edit distance ε
//! *only if* their ε-deletion neighbourhoods intersect, which turns
//! approximate matching into exact hash probes followed by edit-distance
//! verification.

use std::collections::HashSet;

/// Generates the ε-deletion neighbourhood of `word`, including `word`
/// itself (the 0-deletion member). Duplicates are removed.
///
/// The neighbourhood size is `O(|word|^ε)`; callers should partition long
/// words (see [`crate::index`]) rather than raise ε.
pub fn deletion_neighborhood(word: &str, epsilon: usize) -> Vec<String> {
    let chars: Vec<char> = word.chars().collect();
    let mut out = HashSet::new();
    out.insert(word.to_string());
    let mut frontier: Vec<Vec<char>> = vec![chars];
    for _ in 0..epsilon {
        let mut next = Vec::new();
        for s in &frontier {
            if s.is_empty() {
                continue;
            }
            for i in 0..s.len() {
                let mut t = s.clone();
                t.remove(i);
                let st: String = t.iter().collect();
                if out.insert(st) {
                    next.push(t);
                }
            }
        }
        frontier = next;
    }
    let mut v: Vec<String> = out.into_iter().collect();
    v.sort_unstable();
    v
}

/// Invokes `f` for every member of the ε-deletion neighbourhood without
/// materialising the full vector (used during index construction).
pub fn for_each_deletion(word: &str, epsilon: usize, mut f: impl FnMut(&str)) {
    for s in deletion_neighborhood(word, epsilon) {
        f(&s);
    }
}

/// FNV-1a over a character sequence — the 64-bit *signature hash* the
/// variant index keys its probe tables on (see
/// [`for_each_deletion_signature`]). Equal strings always hash equal, so
/// hashing can only *merge* signature buckets, never split them; merged
/// buckets yield extra candidates that the exact edit-distance
/// verification discards, keeping query results identical to the
/// string-keyed scheme.
pub fn signature_hash(chars: &[char]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in chars {
        for b in (c as u32).to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Calls `f` with the [`signature_hash`] of **every** ≤ε-deletion member
/// of `word` — one call per *deletion-position set*, so members reachable
/// through several deletion orders (or with repeated characters) are
/// emitted more than once. Duplicate emissions probe or fill the same
/// bucket and are deduplicated downstream; what matters for soundness is
/// that no member's hash is ever skipped, which is what makes the hashed
/// index candidate set a superset of the string-keyed one.
///
/// Allocation-free apart from one chars scratch: deletion sets are walked
/// combinationally (strictly increasing positions), hashing the surviving
/// characters directly — no member string is ever materialised.
pub fn for_each_deletion_signature(word: &str, epsilon: usize, mut f: impl FnMut(u64)) {
    // Stack buffer for the common short-word case (the partitioned scheme
    // keeps indexed words at or under the partition threshold, well below
    // 32 chars; longer query keywords spill to the heap).
    let mut stack = ['\0'; 32];
    let heap;
    let n = word.chars().count();
    let chars: &[char] = if n <= 32 {
        for (slot, c) in stack.iter_mut().zip(word.chars()) {
            *slot = c;
        }
        &stack[..n]
    } else {
        heap = word.chars().collect::<Vec<char>>();
        &heap
    };
    let mut deleted = vec![usize::MAX; epsilon.min(n)];
    rec_sig(chars, 0, epsilon.min(n), &mut deleted, 0, &mut f);
}

/// Emits the hash for the current deletion set, then extends it with each
/// later position. `deleted[..depth]` holds strictly increasing indices.
fn rec_sig(
    chars: &[char],
    start: usize,
    remaining: usize,
    deleted: &mut [usize],
    depth: usize,
    f: &mut impl FnMut(u64),
) {
    // Hash the characters surviving the current deletion set (two-pointer
    // skip over the sorted deletion indices).
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut d = 0;
    for (i, &c) in chars.iter().enumerate() {
        if d < depth && deleted[d] == i {
            d += 1;
            continue;
        }
        for b in (c as u32).to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    f(h);
    if remaining == 0 {
        return;
    }
    for i in start..chars.len() {
        deleted[depth] = i;
        rec_sig(chars, i + 1, remaining - 1, deleted, depth + 1, f);
    }
}

/// Upper bound on the neighbourhood size for a word of `len` characters:
/// `Σ_{i=0..=ε} C(len, i)`.
pub fn neighborhood_bound(len: usize, epsilon: usize) -> usize {
    let mut total = 0usize;
    for i in 0..=epsilon.min(len) {
        total = total.saturating_add(binomial(len, i));
    }
    total
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: usize = 1;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance::edit_distance;

    #[test]
    fn epsilon_zero_is_identity() {
        assert_eq!(deletion_neighborhood("abc", 0), vec!["abc"]);
    }

    #[test]
    fn epsilon_one_of_cat() {
        let n = deletion_neighborhood("cat", 1);
        assert_eq!(n, vec!["at", "ca", "cat", "ct"]);
    }

    #[test]
    fn duplicates_collapse() {
        // "aaa" with one deletion always yields "aa".
        let n = deletion_neighborhood("aaa", 1);
        assert_eq!(n, vec!["aa", "aaa"]);
    }

    #[test]
    fn epsilon_two_includes_deeper_deletions() {
        let n = deletion_neighborhood("abcd", 2);
        assert!(n.contains(&"ab".to_string()));
        assert!(n.contains(&"cd".to_string()));
        assert!(n.contains(&"abcd".to_string()));
        assert!(!n.contains(&"a".to_string()));
    }

    #[test]
    fn bound_holds() {
        for word in ["a", "cat", "abcdef", "aaaa"] {
            for eps in 0..3 {
                let n = deletion_neighborhood(word, eps);
                assert!(n.len() <= neighborhood_bound(word.chars().count(), eps));
            }
        }
    }

    /// Every member of the string neighbourhood has its hash emitted by
    /// the combinational signature walk (the superset property the hashed
    /// index relies on).
    #[test]
    fn signature_hashes_cover_the_string_neighborhood() {
        for word in ["cat", "aaa", "abcdef", "schütze", ""] {
            for eps in 0..4 {
                let mut sigs = HashSet::new();
                for_each_deletion_signature(word, eps, |h| {
                    sigs.insert(h);
                });
                for m in deletion_neighborhood(word, eps) {
                    let chars: Vec<char> = m.chars().collect();
                    assert!(
                        sigs.contains(&signature_hash(&chars)),
                        "missing hash of {m:?} for word {word:?} eps {eps}"
                    );
                }
            }
        }
    }

    /// One emission per deletion-position set: exactly `Σ C(n, i)` calls.
    #[test]
    fn signature_emission_count_matches_bound() {
        for word in ["a", "cat", "abcdef", "aaaa"] {
            for eps in 0..4 {
                let mut count = 0usize;
                for_each_deletion_signature(word, eps, |_| count += 1);
                assert_eq!(count, neighborhood_bound(word.chars().count(), eps));
            }
        }
    }

    /// The FastSS soundness property: if ed(a, b) ≤ ε then the ε-deletion
    /// neighbourhoods of a and b intersect.
    #[test]
    fn neighborhoods_intersect_for_close_words() {
        let pairs = [
            ("tree", "trie"),
            ("tree", "trees"),
            ("icde", "icdt"),
            ("health", "helth"),
        ];
        for (a, b) in pairs {
            let eps = edit_distance(a, b);
            let na = deletion_neighborhood(a, eps);
            let nb = deletion_neighborhood(b, eps);
            assert!(
                na.iter().any(|x| nb.binary_search(x).is_ok()),
                "{a} / {b} neighbourhoods must intersect at ε={eps}"
            );
        }
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use crate::edit_distance::edit_distance;
    use proptest::prelude::*;

    proptest! {
        /// Soundness: words within ed ≤ ε share a deletion neighbour.
        #[test]
        fn intersection_property(a in "[a-c]{1,7}", b in "[a-c]{1,7}") {
            let d = edit_distance(&a, &b);
            if d <= 2 {
                let na = deletion_neighborhood(&a, 2);
                let nb = deletion_neighborhood(&b, 2);
                prop_assert!(na.iter().any(|x| nb.binary_search(x).is_ok()));
            }
        }

        /// Round-trip: applying explicit random deletions to a word lands
        /// exactly in its deletion neighbourhood, and the member's edit
        /// distance equals the (deletion-only) length gap.
        #[test]
        fn random_deletions_round_trip(
            a in "[a-f]{1,8}",
            picks in proptest::collection::vec(0usize..8, 0..3),
        ) {
            let mut chars: Vec<char> = a.chars().collect();
            let mut deleted = 0usize;
            for p in picks {
                if chars.is_empty() {
                    break;
                }
                chars.remove(p % chars.len());
                deleted += 1;
            }
            let s: String = chars.iter().collect();
            let n = deletion_neighborhood(&a, deleted);
            prop_assert!(
                n.binary_search(&s).is_ok(),
                "{} missing from the {}-deletion neighbourhood of {}", s, deleted, a
            );
            prop_assert!(edit_distance(&a, &s) <= deleted);
        }

        /// Neighbourhoods of multi-byte words delete whole scalars: every
        /// member is a valid string whose edit distance from the word is
        /// exactly the character-count gap.
        #[test]
        fn utf8_members_delete_whole_scalars(
            word in proptest::collection::vec(proptest::char::range('Α', 'ω'), 1..6),
        ) {
            let word: String = word.into_iter().collect();
            let lw = word.chars().count();
            for m in deletion_neighborhood(&word, 2) {
                let lm = m.chars().count();
                prop_assert!(lw - lm <= 2);
                prop_assert_eq!(edit_distance(&word, &m), lw - lm);
            }
        }

        /// Every neighbour is within deletion distance ε of the word.
        #[test]
        fn members_are_subsequences(a in "[a-e]{1,8}") {
            for m in deletion_neighborhood(&a, 2) {
                let la = a.chars().count();
                let lm = m.chars().count();
                prop_assert!(la - lm <= 2);
                // m must be a subsequence of a
                let mut it = a.chars();
                let is_subseq = m.chars().all(|c| it.any(|x| x == c));
                prop_assert!(is_subseq, "{} not a subsequence of {}", m, a);
            }
        }
    }
}
