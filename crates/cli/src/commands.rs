//! The `xclean` subcommands.
//!
//! ```text
//! xclean index build <data.xml> --out index.xci    build & persist an index
//! xclean index upgrade <old.xci> --out new.xci     rewrite a snapshot as v2
//! xclean index inspect <index.xci>                 snapshot summary
//! xclean index shard <in> --shards N --out-prefix P   split into a shard set
//! xclean suggest <data.xml|index.xci> <query…>     clean a keyword query
//! xclean serve <index.xci> --port 8080             long-running HTTP server
//! xclean serve --catalog catalog.xcc --port 8080   multi-corpus HTTP server
//! xclean stats <data.xml|index.xci>                corpus statistics
//! xclean generate <dblp|inex> --out corpus.xml     synthetic corpus
//! ```

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use xclean::{
    Catalog, CorpusSpec, RunStats, Semantics, ShardedEngine, Telemetry, XCleanConfig, XCleanEngine,
};
use xclean_datagen::{generate_dblp, generate_inex, DblpConfig, InexConfig};
use xclean_index::{partition_corpus, storage, CorpusIndex, OpenOptions, SlabMode};
use xclean_server::{AcceptModel, ServerConfig, SuggestServer, TenantEngine};
use xclean_xmltree::{parse_document, to_xml, TreeStats};

use crate::args::{ArgError, Args};

/// Outcome of a command: output lines plus an exit code.
pub struct CmdOutput {
    /// Lines to print to stdout.
    pub lines: Vec<String>,
    /// Process exit code (0 = success).
    pub code: i32,
}

impl CmdOutput {
    fn ok(lines: Vec<String>) -> Self {
        CmdOutput { lines, code: 0 }
    }

    fn fail(msg: String) -> Self {
        CmdOutput {
            lines: vec![format!("error: {msg}")],
            code: 2,
        }
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
xclean — valid spelling suggestions for XML keyword queries (ICDE 2011)

USAGE:
    xclean index build <data.xml> --out <index.xci> [--format v1|v2]
            (`xclean index <data.xml> --out <index.xci>` still works;
             default format is v2 — columnar, checksummed, mmap-servable)
    xclean index upgrade <old.xci> --out <new.xci>
            (rewrites any readable snapshot in the v2 format)
    xclean index inspect <index.xci>
            (summarises a snapshot without materialising the index:
             format version, section sizes, checksum, and — for a shard
             snapshot — its shard-set membership)
    xclean index shard <data.xml | index.xci> --shards <N>
            --out-prefix <P> [--seed S]
            [--catalog <catalog.xcc> [--name <corpus>]]
            (splits the corpus into N entity-aligned shard snapshots
             `P-shard<i>-of-<N>.xci`; scatter-gather serving over the
             set is bit-identical to the unsharded engine. With
             --catalog, the shard set is also registered under --name
             (default `default`) in the catalog file — created if
             missing, the entry replaced if the name already exists —
             ready for `xclean serve --catalog`)
    xclean suggest <data.xml | index.xci> <query keywords…>
            [--k N] [--beta B] [--gamma G] [--epsilon E] [--min-depth D]
            [--semantics node-type|slca|elca] [--phonetic DIST]
            [--space-edits TAU] [--preview N] [--threads N] [--json]
            [--trace-out trace.json] [--metrics-json]
    xclean suggest <data.xml | index.xci> --batch <workload.txt>
            [--threads N] [--k N] [… same tuning flags] [--json]
            [--trace-out trace.json] [--metrics-json]
            (workload file: one query per line; blank lines and
             #-comments are skipped; --threads sizes the worker pool)
            (--trace-out writes a Chrome trace-event JSON of the query's
             pipeline spans — load it in Perfetto / chrome://tracing;
             --metrics-json appends the engine's aggregated counters and
             p50/p95/p99 stage histograms as one JSON line)
    xclean serve <index.xci | --catalog catalog.xcc>
            [--host H] [--port P] [--threads N]
            [--event-loop | --thread-pool] [--max-connections N]
            [--mmap | --no-mmap]
            [--cache-entries N] [--cache-shards N] [--max-body-bytes N]
            [--k N] [--beta B] [--gamma G] [--epsilon E] [--min-depth D]
            [--semantics node-type|slca|elca] [--phonetic DIST]
            [--trace-out trace.json] [--metrics-json metrics.json]
            [--slow-ms MS] [--slow-log FILE] [--slo-ms MS]
            [--log-level SPEC] [--log-json]
            [--flight-events N] [--conn-registry N]
            (long-running HTTP server: POST/GET /suggest, GET /healthz,
             GET /metrics, GET /statusz, GET /debug/requests?n=K,
             GET /debug/conns?n=K, GET /debug/flight?events=N;
             with --catalog, every declared corpus is served under
             POST/GET /suggest/<name> — sharded entries scatter-gather
             across their snapshots — while bare /suggest, /healthz
             and the unlabelled /metrics series keep tracking the
             first (primary) catalog entry;
             answers repeated queries from a sharded LRU response cache;
             every response carries an X-Request-Id; requests slower
             than --slow-ms (default 100) are logged as JSON lines to
             --slow-log (default stderr); requests slower than --slo-ms
             (default 50) count as SLO breaches in the per-corpus burn
             rates on /statusz and /metrics; Ctrl-C drains in-flight
             requests, then flushes --trace-out / --metrics-json)
            (--log-level takes a spec like `info` or
             `info,xclean_server=debug`; --log-json switches the leveled
             stderr logger from logfmt to JSON lines; --flight-events
             sizes the runtime flight recorder and --conn-registry the
             live-connection registry — 0 disables either)
            (--event-loop serves HTTP/1.1 keep-alive connections from a
             nonblocking epoll loop — the default on Linux, up to
             --max-connections sockets; --thread-pool falls back to
             one-request-per-connection blocking accept, the only model
             on other platforms)
            (v2 snapshots are served straight from the snapshot bytes:
             by default they are mmap-ed when possible; --mmap requires
             the mapping, --no-mmap forces an in-memory copy)
    xclean stats <data.xml | index.xci>
    xclean generate <dblp | dblp-large | inex> --out <corpus.xml>
            [--size N] [--seed S] [--vocab N] [--vocab-rotation N]
            (--vocab-rotation shifts the dblp vocabulary tables so a
             multi-corpus catalog can hold several DBLP-flavoured
             corpora with different hot terms)
";

/// Dispatches a full argument vector (without the program name).
pub fn run(raw: Vec<String>) -> CmdOutput {
    let Some(cmd) = raw.first().cloned() else {
        return CmdOutput {
            lines: vec![USAGE.to_string()],
            code: 1,
        };
    };
    let rest: Vec<String> = raw[1..].to_vec();
    let result = match cmd.as_str() {
        "index" => cmd_index(rest),
        "suggest" => cmd_suggest(rest),
        "serve" => cmd_serve(rest),
        "stats" => cmd_stats(rest),
        "generate" => cmd_generate(rest),
        "help" | "--help" | "-h" => {
            return CmdOutput::ok(vec![USAGE.to_string()]);
        }
        other => Err(ArgError(format!("unknown command {other:?}\n{USAGE}"))),
    };
    match result {
        Ok(out) => out,
        Err(e) => CmdOutput::fail(e.to_string()),
    }
}

/// Loads a corpus from either an XML document or a persisted `.xci` index.
fn load_corpus(path: &str) -> Result<CorpusIndex, ArgError> {
    if path.ends_with(".xci") {
        storage::open_file(path, &OpenOptions::default())
            .map(|(corpus, _report)| corpus)
            .map_err(|e| ArgError(format!("{path}: {e}")))
    } else {
        let text = std::fs::read_to_string(path).map_err(|e| ArgError(format!("{path}: {e}")))?;
        let tree = parse_document(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
        Ok(CorpusIndex::build(tree))
    }
}

/// `xclean index <build|upgrade|inspect> …`. The original bare form
/// (`xclean index <data.xml> --out <index.xci>`) remains an alias for
/// `build` so existing scripts keep working.
fn cmd_index(raw: Vec<String>) -> Result<CmdOutput, ArgError> {
    match raw.first().map(String::as_str) {
        Some("build") => cmd_index_build(raw[1..].to_vec()),
        Some("upgrade") => cmd_index_upgrade(raw[1..].to_vec()),
        Some("inspect") => cmd_index_inspect(raw[1..].to_vec()),
        Some("shard") => cmd_index_shard(raw[1..].to_vec()),
        _ => cmd_index_build(raw),
    }
}

fn cmd_index_build(raw: Vec<String>) -> Result<CmdOutput, ArgError> {
    let args = Args::parse(raw, &[])?;
    args.reject_unknown(&["out", "format"])?;
    let [input] = args.positional() else {
        return Err(ArgError(
            "usage: xclean index build <data.xml> --out <index.xci> [--format v1|v2]".into(),
        ));
    };
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("--out <index.xci> is required".into()))?;
    let format = args.get("format").unwrap_or("v2");
    let corpus = load_corpus(input)?;
    match format {
        "v2" => storage::save_to_file_v2(&corpus, out).map_err(|e| ArgError(e.to_string()))?,
        "v1" => storage::save_to_file(&corpus, out).map_err(|e| ArgError(e.to_string()))?,
        other => {
            return Err(ArgError(format!(
                "--format: expected v1 or v2, got {other:?}"
            )))
        }
    }
    let size = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    Ok(CmdOutput::ok(vec![format!(
        "indexed {} nodes, {} terms → {out} ({format}, {:.1} MB)",
        corpus.tree().len(),
        corpus.vocab().len(),
        size as f64 / 1e6
    )]))
}

/// `xclean index upgrade <old.xci> --out <new.xci>`: re-encodes any
/// readable snapshot (v1 or v2) in the current v2 format.
fn cmd_index_upgrade(raw: Vec<String>) -> Result<CmdOutput, ArgError> {
    let args = Args::parse(raw, &[])?;
    args.reject_unknown(&["out"])?;
    let [input] = args.positional() else {
        return Err(ArgError(
            "usage: xclean index upgrade <old.xci> --out <new.xci>".into(),
        ));
    };
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("--out <new.xci> is required".into()))?;
    storage::upgrade_file(input, out).map_err(|e| ArgError(format!("{input}: {e}")))?;
    let s = storage::summarize_file(out).map_err(|e| ArgError(format!("{out}: {e}")))?;
    Ok(CmdOutput::ok(vec![format!(
        "upgraded {input} → {out} (v{}, {} nodes, {} terms, {:.1} MB)",
        s.format_version,
        s.nodes,
        s.terms,
        s.total_bytes as f64 / 1e6
    )]))
}

/// `xclean index shard <in> --shards N --out-prefix P [--seed S]
/// [--catalog F [--name C]]`: splits a corpus into an entity-aligned
/// shard set and persists each shard as an ordinary v2 snapshot.
/// Serving the set through the scatter-gather engine is bit-identical
/// to serving the parent corpus unsharded (DESIGN.md §16). With
/// `--catalog` the shard set is additionally registered in a corpus
/// catalog — repeated invocations with different `--name`s assemble a
/// multi-corpus catalog for `xclean serve --catalog`.
fn cmd_index_shard(raw: Vec<String>) -> Result<CmdOutput, ArgError> {
    let args = Args::parse(raw, &[])?;
    args.reject_unknown(&["shards", "seed", "out-prefix", "catalog", "name"])?;
    let [input] = args.positional() else {
        return Err(ArgError(
            "usage: xclean index shard <data.xml | index.xci> --shards <N> --out-prefix <P> \
             [--seed S] [--catalog <catalog.xcc> [--name <corpus>]]"
                .into(),
        ));
    };
    let shards: usize = args.get_parsed("shards", 0usize)?;
    if shards == 0 {
        return Err(ArgError("--shards <N> (at least 1) is required".into()));
    }
    let seed: u64 = args.get_parsed("seed", 0u64)?;
    let prefix = args
        .get("out-prefix")
        .ok_or_else(|| ArgError("--out-prefix <P> is required".into()))?;
    if args.get("name").is_some() && args.get("catalog").is_none() {
        return Err(ArgError("--name only makes sense with --catalog".into()));
    }
    let corpus = load_corpus(input)?;
    let parts =
        partition_corpus(&corpus, shards, seed).map_err(|e| ArgError(format!("{input}: {e}")))?;
    let mut lines = Vec::new();
    let mut snapshot_paths = Vec::new();
    for part in &parts {
        let meta = part
            .shard_meta()
            .expect("partition_corpus stamps every shard");
        let path = format!(
            "{prefix}-shard{}-of-{}.xci",
            meta.shard_id, meta.shard_count
        );
        storage::save_to_file_v2(part, &path).map_err(|e| ArgError(format!("{path}: {e}")))?;
        let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        lines.push(format!(
            "shard {}/{}  {} nodes, {} terms, {} tokens → {path} ({:.2} MB)",
            meta.shard_id,
            meta.shard_count,
            part.tree().len(),
            part.vocab().len(),
            part.vocab().total_tokens(),
            size as f64 / 1e6
        ));
        snapshot_paths.push(path);
    }
    lines.push(format!(
        "parent fingerprint {:016x}, partitioner seed {seed}",
        parts[0]
            .shard_meta()
            .expect("stamped above")
            .parent_fingerprint
    ));
    if let Some(catalog_path) = args.get("catalog") {
        let name = args.get("name").unwrap_or("default").to_string();
        let mut catalog = if std::path::Path::new(catalog_path).exists() {
            Catalog::load(catalog_path).map_err(|e| ArgError(format!("{catalog_path}: {e}")))?
        } else {
            Catalog::default()
        };
        // Catalog paths resolve against the catalog file's directory, so
        // store each shard relative to it when it sits underneath, and
        // fall back to an absolute path otherwise (the shard files exist
        // at this point, so canonicalize cannot fail on them).
        let base = std::path::Path::new(catalog_path)
            .parent()
            .filter(|p| !p.as_os_str().is_empty());
        let abs_base = std::fs::canonicalize(base.unwrap_or_else(|| std::path::Path::new(".")))
            .map_err(|e| ArgError(format!("{catalog_path}: {e}")))?;
        let stored: Vec<String> = snapshot_paths
            .iter()
            .map(|p| match std::fs::canonicalize(p) {
                Ok(abs) => match abs.strip_prefix(&abs_base) {
                    Ok(rel) => rel.display().to_string(),
                    Err(_) => abs.display().to_string(),
                },
                Err(_) => p.clone(),
            })
            .collect();
        let spec = CorpusSpec {
            name: name.clone(),
            config: XCleanConfig::default(),
            snapshots: stored,
        };
        match catalog.corpora.iter_mut().find(|c| c.name == name) {
            Some(existing) => *existing = spec,
            None => catalog.corpora.push(spec),
        }
        catalog
            .save(catalog_path)
            .map_err(|e| ArgError(format!("{catalog_path}: {e}")))?;
        lines.push(format!(
            "catalog: corpus {name:?} ({} shard(s)) registered → {catalog_path} ({} corpora)",
            parts.len(),
            catalog.corpora.len()
        ));
    }
    Ok(CmdOutput::ok(lines))
}

/// `xclean index inspect <index.xci>`: reads only the snapshot framing
/// ([`storage::summarize_file`]) — no postings decode, no tree replay —
/// so it answers in O(terms) even on multi-hundred-MB snapshots.
fn cmd_index_inspect(raw: Vec<String>) -> Result<CmdOutput, ArgError> {
    let args = Args::parse(raw, &[])?;
    args.reject_unknown(&[])?;
    let [path] = args.positional() else {
        return Err(ArgError("usage: xclean index inspect <index.xci>".into()));
    };
    let s = storage::summarize_file(path).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let mut lines = vec![
        format!("snapshot    {path}"),
        format!("format      v{}", s.format_version),
        format!("size        {:.2} MB", s.total_bytes as f64 / 1e6),
        format!(
            "checksum    {}",
            match s.checksum {
                Some(c) => format!("{c:016x} (fnv1a, verified)"),
                None => "none (v1 snapshots are unchecksummed)".to_string(),
            }
        ),
        format!("nodes       {}", s.nodes),
        format!("labels      {}", s.labels),
        format!("terms       {}", s.terms),
        format!("tokens      {}", s.total_tokens),
        format!(
            "postings    {:.2} MB ({:.1}% of snapshot)",
            s.postings_bytes as f64 / 1e6,
            100.0 * s.postings_bytes as f64 / (s.total_bytes as f64).max(1.0)
        ),
        format!(
            "tokenizer   min_len={} drop_numbers={} drop_stop_words={}",
            s.tokenizer.min_token_len, s.tokenizer.drop_numbers, s.tokenizer.drop_stop_words
        ),
    ];
    if let Some(sh) = &s.shard {
        lines.push(format!(
            "shard       {} of {} (seed {}, parent fingerprint {:016x})",
            sh.shard_id, sh.shard_count, sh.seed, sh.parent_fingerprint
        ));
    }
    lines.push("sections".to_string());
    for sec in &s.sections {
        lines.push(format!(
            "  {:<10} {:>12} B ({:.1}%)",
            sec.name,
            sec.bytes,
            100.0 * sec.bytes as f64 / (s.total_bytes as f64).max(1.0)
        ));
    }
    Ok(CmdOutput::ok(lines))
}

/// Renders the per-stage summary table: stage, time, share of `total`,
/// and the counters that explain where that time went.
fn stage_table(stats: &RunStats, total: Duration, suggestions: usize) -> Vec<String> {
    let total_nanos = (total.as_nanos() as u64).max(1);
    let row = |stage: &str, nanos: u64, counters: String| {
        format!(
            "  {:<6} {:>9.3}ms {:>6.1}%  {counters}",
            stage,
            nanos as f64 / 1e6,
            100.0 * nanos as f64 / total_nanos as f64,
        )
    };
    vec![
        format!("  {:<6} {:>11} {:>7}  counters", "stage", "time", "%"),
        row(
            "slots",
            stats.slot_nanos,
            "variant generation (FastSS + phonetic)".to_string(),
        ),
        row(
            "walk",
            stats.walk_nanos,
            format!(
                "{} subtrees; {} postings read, {} skipped in {} skip_to calls",
                stats.subtrees, stats.access.read, stats.access.skipped, stats.access.skip_calls
            ),
        ),
        row(
            "rank",
            stats.rank_nanos,
            format!(
                "{} candidates, {} entities, {} result types; γ: {} evicted, {} rejected",
                stats.candidates_enumerated,
                stats.entities_scored,
                stats.result_type_computations,
                stats.pruning.evictions,
                stats.pruning.rejected
            ),
        ),
        row(
            "total",
            total_nanos,
            format!(
                "{} score partition(s), {} suggestion(s)",
                stats.score_partitions, suggestions
            ),
        ),
    ]
}

/// Sums per-response stats for the batch-mode stage table (stage times
/// are CPU time across all workers, so they can exceed wall-clock).
fn merge_batch_stats(responses: &[xclean::SuggestResponse]) -> (RunStats, Duration, usize) {
    let mut merged = RunStats::default();
    let mut cpu = Duration::ZERO;
    let mut suggestions = 0usize;
    for r in responses {
        merged.subtrees += r.stats.subtrees;
        merged.candidates_enumerated += r.stats.candidates_enumerated;
        merged.result_type_computations += r.stats.result_type_computations;
        merged.entities_scored += r.stats.entities_scored;
        merged.access += r.stats.access;
        merged.pruning.evictions += r.stats.pruning.evictions;
        merged.pruning.rejected += r.stats.pruning.rejected;
        merged.slot_nanos += r.stats.slot_nanos;
        merged.walk_nanos += r.stats.walk_nanos;
        merged.rank_nanos += r.stats.rank_nanos;
        merged.score_partitions = merged.score_partitions.max(r.stats.score_partitions);
        cpu += r.elapsed;
        suggestions += r.suggestions.len();
    }
    (merged, cpu, suggestions)
}

/// Parses the engine tuning flags shared by `suggest` and `serve`
/// (scoring parameters only — concurrency is each command's own affair).
fn tuning_from_args(args: &Args) -> Result<(XCleanConfig, Semantics), ArgError> {
    let mut config = XCleanConfig {
        k: args.get_parsed("k", 10usize)?,
        beta: args.get_parsed("beta", 5.0f64)?,
        epsilon: args.get_parsed("epsilon", 2usize)?,
        min_depth: args.get_parsed("min-depth", 2u32)?,
        ..Default::default()
    };
    if let Some(g) = args.get("gamma") {
        config.gamma = if g == "none" {
            None
        } else {
            Some(
                g.parse()
                    .map_err(|_| ArgError(format!("--gamma: cannot parse {g:?}")))?,
            )
        };
    }
    if let Some(p) = args.get("phonetic") {
        config.phonetic_distance = Some(
            p.parse()
                .map_err(|_| ArgError(format!("--phonetic: cannot parse {p:?}")))?,
        );
    }
    let semantics = match args.get("semantics").unwrap_or("node-type") {
        "node-type" => Semantics::NodeType,
        "slca" => Semantics::Slca,
        "elca" => Semantics::Elca,
        other => return Err(ArgError(format!("unknown semantics {other:?}"))),
    };
    Ok((config, semantics))
}

fn cmd_suggest(raw: Vec<String>) -> Result<CmdOutput, ArgError> {
    let args = Args::parse(raw, &["json", "metrics-json"])?;
    args.reject_unknown(&[
        "k",
        "beta",
        "gamma",
        "epsilon",
        "min-depth",
        "semantics",
        "phonetic",
        "space-edits",
        "json",
        "preview",
        "threads",
        "batch",
        "trace-out",
        "metrics-json",
    ])?;
    let [input, query @ ..] = args.positional() else {
        return Err(ArgError("usage: xclean suggest <data> <query…>".into()));
    };
    let batch_file = args.get("batch");
    if query.is_empty() && batch_file.is_none() {
        return Err(ArgError(
            "no query keywords given (or use --batch <file>)".into(),
        ));
    }
    if !query.is_empty() && batch_file.is_some() {
        return Err(ArgError(
            "--batch replaces the inline query; give one or the other".into(),
        ));
    }
    let threads: usize = args.get_parsed("threads", 1usize)?;
    if threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    let (mut config, semantics) = tuning_from_args(&args)?;
    config.num_threads = threads;
    let tau: u32 = args.get_parsed("space-edits", 0u32)?;

    let trace_out = args.get("trace-out").map(str::to_string);
    let corpus = load_corpus(input)?;
    let mut engine = XCleanEngine::from_corpus(corpus, config).with_semantics(semantics);
    if trace_out.is_some() {
        // Span capture is opt-in; the metrics registry is always live.
        engine = engine.with_telemetry(Telemetry::with_tracing());
    }
    let mut out = if let Some(batch) = batch_file {
        if tau > 0 {
            return Err(ArgError(
                "--space-edits is not supported with --batch".into(),
            ));
        }
        cmd_suggest_batch(&engine, batch, args.has_flag("json"))?
    } else {
        cmd_suggest_one(&engine, &args, query, tau)?
    };
    if let Some(path) = trace_out {
        let spans = engine.tracer().finished_spans().len();
        std::fs::write(&path, engine.tracer().chrome_trace_json())
            .map_err(|e| ArgError(format!("{path}: {e}")))?;
        out.lines
            .push(format!("trace: {spans} spans → {path} (chrome://tracing)"));
    }
    if args.has_flag("metrics-json") {
        out.lines.push(engine.metrics().metrics_json());
    }
    Ok(out)
}

fn cmd_suggest_one(
    engine: &XCleanEngine,
    args: &Args,
    query: &[String],
    tau: u32,
) -> Result<CmdOutput, ArgError> {
    let query_str = query.join(" ");
    let response = if tau > 0 {
        engine.suggest_with_space_edits(&query_str, tau)
    } else {
        engine.suggest(&query_str)
    };

    let mut lines = Vec::new();
    if args.has_flag("json") {
        let items: Vec<serde_json::Value> = response
            .suggestions
            .iter()
            .map(|s| {
                serde_json::json!({
                    "query": s.query_string(),
                    "terms": s.terms,
                    "log_score": s.log_score,
                    "distances": s.distances,
                    "entities": s.entity_count,
                })
            })
            .collect();
        lines.push(serde_json::to_string_pretty(&items).expect("serialisable"));
    } else if response.suggestions.is_empty() {
        lines.push("no valid suggestion (no candidate query has results)".to_string());
    } else {
        let previews: usize = args.get_parsed("preview", 0usize)?;
        for (i, s) in response.suggestions.iter().enumerate() {
            lines.push(format!(
                "{:>2}. {:<45} score {:>9.3}  entities {:>5}  edits {:?}",
                i + 1,
                s.query_string(),
                s.log_score,
                s.entity_count,
                s.distances
            ));
            if previews > 0 && i == 0 {
                for frag in engine.preview(s, previews) {
                    let short: String = frag.chars().take(160).collect();
                    lines.push(format!("      ↳ {short}"));
                }
            }
        }
        lines.extend(stage_table(
            &response.stats,
            response.elapsed,
            response.suggestions.len(),
        ));
    }
    Ok(CmdOutput::ok(lines))
}

/// The `--batch <file>` workload mode: answers every query in the file
/// through [`XCleanEngine::suggest_many`] (pooled when `--threads > 1`)
/// and reports per-query results plus throughput.
fn cmd_suggest_batch(engine: &XCleanEngine, path: &str, json: bool) -> Result<CmdOutput, ArgError> {
    let text = std::fs::read_to_string(path).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let queries: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if queries.is_empty() {
        return Err(ArgError(format!("{path}: no queries (one per line)")));
    }
    let start = std::time::Instant::now();
    let responses = engine.suggest_many(&queries);
    let elapsed = start.elapsed();

    let mut lines = Vec::new();
    if json {
        let items: Vec<serde_json::Value> = queries
            .iter()
            .zip(responses.iter())
            .map(|(q, r)| {
                let suggestions: Vec<serde_json::Value> = r
                    .suggestions
                    .iter()
                    .map(|s| {
                        serde_json::json!({
                            "query": s.query_string(),
                            "log_score": s.log_score,
                            "distances": s.distances,
                            "entities": s.entity_count,
                        })
                    })
                    .collect();
                serde_json::json!({
                    "input": (*q).to_string(),
                    "suggestions": serde_json::Value::Array(suggestions),
                })
            })
            .collect();
        lines.push(serde_json::to_string_pretty(&items).expect("serialisable"));
    } else {
        for (q, r) in queries.iter().zip(responses.iter()) {
            match r.suggestions.first() {
                Some(best) => lines.push(format!(
                    "{:<35} → {:<35} score {:>9.3}  ({} suggestions)",
                    q,
                    best.query_string(),
                    best.log_score,
                    r.suggestions.len()
                )),
                None => lines.push(format!("{q:<35} → (no valid suggestion)")),
            }
        }
        let qps = queries.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        lines.push(format!(
            "[{} queries in {:?} on {} thread(s); {:.1} q/s]",
            queries.len(),
            elapsed,
            engine.config().num_threads,
            qps
        ));
        // Stage shares are of summed per-query CPU time, not wall-clock,
        // so they stay meaningful however wide the worker pool is.
        let (merged, cpu, suggestions) = merge_batch_stats(&responses);
        lines.extend(stage_table(&merged, cpu, suggestions));
    }
    Ok(CmdOutput::ok(lines))
}

/// `xclean serve <index.xci>`: the long-running suggestion server.
/// Loads the snapshot once, then blocks in the accept loop until
/// SIGINT/SIGTERM triggers a graceful drain; the returned lines are the
/// post-drain summary.
fn cmd_serve(raw: Vec<String>) -> Result<CmdOutput, ArgError> {
    let args = Args::parse(
        raw,
        &["mmap", "no-mmap", "event-loop", "thread-pool", "log-json"],
    )?;
    args.reject_unknown(&[
        "catalog",
        "host",
        "port",
        "threads",
        "event-loop",
        "thread-pool",
        "max-connections",
        "mmap",
        "no-mmap",
        "cache-entries",
        "cache-shards",
        "max-body-bytes",
        "k",
        "beta",
        "gamma",
        "epsilon",
        "min-depth",
        "semantics",
        "phonetic",
        "trace-out",
        "metrics-json",
        "slow-ms",
        "slo-ms",
        "slow-log",
        "log-level",
        "log-json",
        "flight-events",
        "conn-registry",
    ])?;
    let catalog_path = args.get("catalog").map(str::to_string);
    let snapshot = match (args.positional(), &catalog_path) {
        ([], Some(_)) => None,
        ([s], None) => Some(s.clone()),
        ([_], Some(_)) => {
            return Err(ArgError(
                "give a snapshot positional OR --catalog, not both".into(),
            ))
        }
        _ => {
            return Err(ArgError(
                "usage: xclean serve <index.xci | --catalog catalog.xcc> [--port P] \
                 [--threads N] [--cache-entries N]"
                    .into(),
            ))
        }
    };
    if catalog_path.is_some() {
        // Catalog serving is declarative: each corpus entry carries its
        // own full engine configuration, so per-process tuning flags
        // would silently disagree with it.
        for flag in [
            "k",
            "beta",
            "gamma",
            "epsilon",
            "min-depth",
            "semantics",
            "phonetic",
        ] {
            if args.get(flag).is_some() {
                return Err(ArgError(format!(
                    "--{flag} does not combine with --catalog: engine tuning is per-corpus \
                     in the catalog file"
                )));
            }
        }
    }
    let (config, semantics) = tuning_from_args(&args)?;
    let defaults = ServerConfig::default();
    let slow_ms: u64 = args.get_parsed("slow-ms", 100u64)?;
    let slo_ms: u64 = args.get_parsed("slo-ms", 50u64)?;
    if args.has_flag("event-loop") && args.has_flag("thread-pool") {
        return Err(ArgError(
            "--event-loop and --thread-pool are mutually exclusive".into(),
        ));
    }
    if args.has_flag("event-loop") && !cfg!(target_os = "linux") {
        return Err(ArgError(
            "--event-loop requires Linux (epoll); use --thread-pool".into(),
        ));
    }
    // The epoll loop is the default wherever it exists; elsewhere the
    // blocking thread-pool accept path is the only model.
    let accept_model = if args.has_flag("thread-pool") || !cfg!(target_os = "linux") {
        AcceptModel::ThreadPool
    } else {
        AcceptModel::EventLoop
    };
    // The leveled stderr logger goes up before anything can log. A
    // second `serve` in one process keeps the first logger (set_global
    // is first-wins) — fine for a CLI that serves once.
    let log_spec = xclean_telemetry::LevelSpec::parse(args.get("log-level").unwrap_or("info"))
        .map_err(|e| ArgError(format!("--log-level: {e}")))?;
    let log_format = if args.has_flag("log-json") {
        xclean_telemetry::LogFormat::Json
    } else {
        xclean_telemetry::LogFormat::Logfmt
    };
    xclean_telemetry::set_global(xclean_telemetry::Logger::stderr(log_spec, log_format));
    let server_config = ServerConfig {
        threads: args.get_parsed("threads", defaults.threads)?,
        accept_model,
        max_connections: args.get_parsed("max-connections", defaults.max_connections)?,
        cache_entries: args.get_parsed("cache-entries", defaults.cache_entries)?,
        cache_shards: args.get_parsed("cache-shards", defaults.cache_shards)?,
        max_body_bytes: args.get_parsed("max-body-bytes", defaults.max_body_bytes)?,
        slow_threshold: Duration::from_millis(slow_ms),
        slo_threshold: Duration::from_millis(slo_ms),
        slow_log: args.get("slow-log").map(std::path::PathBuf::from),
        flight_capacity: args.get_parsed("flight-events", defaults.flight_capacity)?,
        conn_registry_capacity: args
            .get_parsed("conn-registry", defaults.conn_registry_capacity)?,
        ..defaults
    };
    if server_config.max_connections == 0 {
        return Err(ArgError("--max-connections must be at least 1".into()));
    }
    if server_config.threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    let (threads_n, flight_n, registry_n) = (
        server_config.threads,
        server_config.flight_capacity,
        server_config.conn_registry_capacity,
    );
    let host = args.get("host").unwrap_or("127.0.0.1");
    let port: u16 = args.get_parsed("port", 8080u16)?;
    let trace_out = args.get("trace-out").map(str::to_string);
    let metrics_out = args.get("metrics-json").map(str::to_string);

    if args.has_flag("mmap") && args.has_flag("no-mmap") {
        return Err(ArgError(
            "--mmap and --no-mmap are mutually exclusive".into(),
        ));
    }
    let open_options = OpenOptions {
        mode: if args.has_flag("mmap") {
            SlabMode::Mapped
        } else if args.has_flag("no-mmap") {
            SlabMode::Owned
        } else {
            SlabMode::Auto
        },
        ..Default::default()
    };

    // The server path deliberately refuses to parse XML on the fly: a
    // long-running process should start from the index built offline
    // (`xclean index build` / `index shard`), exactly as the paper
    // separates offline indexing from interactive querying. v2 snapshots
    // open as a view over the file bytes (mmap-ed by default), so
    // startup cost is the validation pass, not a full re-encode.
    let mut corpora: Vec<(String, TenantEngine)> = Vec::new();
    let mut banner: Vec<String> = Vec::new();
    if let Some(cat_path) = &catalog_path {
        let catalog = Catalog::load(cat_path).map_err(|e| ArgError(format!("{cat_path}: {e}")))?;
        if catalog.corpora.is_empty() {
            return Err(ArgError(format!("{cat_path}: catalog declares no corpora")));
        }
        let base = std::path::Path::new(cat_path)
            .parent()
            .unwrap_or_else(|| std::path::Path::new(""))
            .to_path_buf();
        for spec in &catalog.corpora {
            let paths = spec.resolved_snapshots(&base);
            let mut shards = Vec::new();
            let mut reports = Vec::new();
            for p in &paths {
                let (c, report) = storage::open_file(p, &open_options).map_err(|e| {
                    ArgError(format!(
                        "{cat_path}: corpus {:?}: {}: {e}",
                        spec.name,
                        p.display()
                    ))
                })?;
                reports.push(report);
                shards.push(c);
            }
            let engine = if shards.len() == 1 && shards[0].shard_meta().is_none() {
                // A plain single-snapshot corpus serves unsharded.
                let corpus = shards.pop().expect("exactly one snapshot");
                let mut e = XCleanEngine::from_corpus(corpus, spec.config.clone());
                if trace_out.is_some() {
                    e = e.with_telemetry(Telemetry::with_tracing());
                }
                e.record_snapshot_timings(&reports[0]);
                TenantEngine::Unsharded(Arc::new(e))
            } else {
                // One or more shard snapshots: scatter-gather serving.
                // `from_shards` validates completeness (exact ids
                // 0..shard_count, one seed, one parent fingerprint).
                let mut e =
                    ShardedEngine::from_shards(shards, spec.config.clone()).map_err(|err| {
                        ArgError(format!("{cat_path}: corpus {:?}: {err}", spec.name))
                    })?;
                if trace_out.is_some() {
                    e = e.with_telemetry(Telemetry::with_tracing());
                }
                TenantEngine::Sharded(Arc::new(e))
            };
            banner.push(format!(
                "corpus {}: {} snapshot(s), {} shard(s), fingerprint {:016x} → /suggest/{}",
                spec.name,
                paths.len(),
                engine.shard_count(),
                engine.fingerprint(),
                spec.name
            ));
            corpora.push((spec.name.clone(), engine));
        }
    } else {
        let snapshot = snapshot.as_deref().expect("checked above");
        let (corpus, load_report) = storage::open_file(snapshot, &open_options).map_err(|e| {
            ArgError(format!(
                "{snapshot}: {e} (build a snapshot first: xclean index build <data.xml> --out <index.xci>)"
            ))
        })?;
        let mut engine = XCleanEngine::from_corpus(corpus, config).with_semantics(semantics);
        if trace_out.is_some() {
            engine = engine.with_telemetry(Telemetry::with_tracing());
        }
        engine.record_snapshot_timings(&load_report);
        banner.push(format!(
            "snapshot: v{} {} ({:.2} MB) — open {:.1}ms, validate {:.1}ms",
            load_report.format_version,
            if load_report.mapped {
                "mmap-backed"
            } else {
                "in-memory"
            },
            load_report.total_bytes as f64 / 1e6,
            load_report.open_nanos as f64 / 1e6,
            load_report.validate_nanos as f64 / 1e6,
        ));
        corpora.push((
            "default".to_string(),
            TenantEngine::Unsharded(Arc::new(engine)),
        ));
    }
    // The primary (first) tenant's handles feed the post-drain trace and
    // metrics flushes, exactly like the engine did in single-corpus mode.
    let primary_engine = corpora[0].1.clone();
    let addr = format!("{host}:{port}");
    let server = SuggestServer::bind_tenants(corpora, &addr, server_config)
        .map_err(|e| ArgError(format!("cannot bind {addr}: {e}")))?;
    let bound = server
        .local_addr()
        .map_err(|e| ArgError(format!("{addr}: {e}")))?;

    xclean_server::install_signal_handler();
    // Banner goes out before the blocking accept loop — CmdOutput lines
    // would only print after drain, far too late for "is it up yet?".
    for line in &banner {
        println!("{line}");
    }
    println!(
        "xclean-server listening on http://{bound} — {}, {} worker(s), cache {} entries / {} shard(s), fingerprint {:016x}",
        match accept_model {
            AcceptModel::EventLoop => "epoll event loop (keep-alive)",
            AcceptModel::ThreadPool => "thread-pool accept",
        },
        args.get_parsed("threads", defaults.threads)?,
        args.get_parsed("cache-entries", defaults.cache_entries)?,
        args.get_parsed("cache-shards", defaults.cache_shards)?,
        server.fingerprint()
    );
    println!(
        "endpoints: POST/GET /suggest{}   GET /healthz /metrics /statusz /debug/requests /debug/conns /debug/flight   (Ctrl-C drains)",
        if catalog_path.is_some() {
            " /suggest/<corpus>"
        } else {
            ""
        }
    );
    println!(
        "slow-query log: threshold {slow_ms}ms → {}",
        args.get("slow-log").unwrap_or("stderr")
    );
    let _ = std::io::stdout().flush();
    xclean_telemetry::log_info!(
        "xclean_cli::serve",
        "listening",
        addr = bound,
        accept_model = match accept_model {
            AcceptModel::EventLoop => "event_loop",
            AcceptModel::ThreadPool => "thread_pool",
        },
        threads = threads_n,
        flight_events = flight_n,
        conn_registry = registry_n
    );

    let report = server.run().map_err(|e| ArgError(format!("server: {e}")))?;

    let mut lines = vec![
        format!(
            "drained: {} request(s), {} error(s) over {} connection(s) ({} keep-alive reuse); \
             cache {} hit(s) / {} miss(es) / {} eviction(s)",
            report.requests,
            report.errors,
            report.connections,
            report.keepalive_reuse,
            report.cache_hits,
            report.cache_misses,
            report.cache_evictions
        ),
        format!(
            "runtime: {} loop wake(s), {} queued job(s), {} flight event(s)",
            report.loop_wakes, report.queue_waits, report.flight_events
        ),
    ];
    if let Some(path) = trace_out {
        let spans = primary_engine.tracer().finished_spans().len();
        std::fs::write(&path, primary_engine.tracer().chrome_trace_json())
            .map_err(|e| ArgError(format!("{path}: {e}")))?;
        lines.push(format!("trace: {spans} spans → {path} (chrome://tracing)"));
    }
    if let Some(path) = metrics_out {
        std::fs::write(&path, primary_engine.metrics().metrics_json())
            .map_err(|e| ArgError(format!("{path}: {e}")))?;
        lines.push(format!("metrics → {path}"));
    }
    Ok(CmdOutput::ok(lines))
}

fn cmd_stats(raw: Vec<String>) -> Result<CmdOutput, ArgError> {
    let args = Args::parse(raw, &[])?;
    args.reject_unknown(&[])?;
    let [input] = args.positional() else {
        return Err(ArgError("usage: xclean stats <data.xml|index.xci>".into()));
    };
    let corpus = load_corpus(input)?;
    let s = TreeStats::compute(corpus.tree());
    Ok(CmdOutput::ok(vec![
        format!("size        {:.2} MB", s.size_bytes as f64 / 1e6),
        format!("nodes       {}", s.node_count),
        format!("max depth   {}", s.max_depth),
        format!("avg depth   {:.2}", s.avg_depth),
        format!("node types  {}", s.distinct_paths),
        format!("vocabulary  {}", corpus.vocab().len()),
        format!("tokens      {}", corpus.vocab().total_tokens()),
        format!("elements    {}", corpus.element_count()),
    ]))
}

fn cmd_generate(raw: Vec<String>) -> Result<CmdOutput, ArgError> {
    let args = Args::parse(raw, &[])?;
    args.reject_unknown(&["out", "size", "seed", "vocab", "vocab-rotation"])?;
    let [kind] = args.positional() else {
        return Err(ArgError(
            "usage: xclean generate <dblp|dblp-large|inex> --out <corpus.xml>".into(),
        ));
    };
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("--out <corpus.xml> is required".into()))?;
    let tree = match kind.as_str() {
        "dblp" => generate_dblp(&DblpConfig {
            publications: args.get_parsed("size", 20_000usize)?,
            seed: args.get_parsed("seed", DblpConfig::default().seed)?,
            vocab_rotation: args.get_parsed("vocab-rotation", 0usize)?,
            ..Default::default()
        }),
        "dblp-large" => {
            let defaults = xclean_datagen::LargeDblpConfig::default();
            xclean_datagen::generate_large_dblp(&xclean_datagen::LargeDblpConfig {
                publications: args.get_parsed("size", defaults.publications)?,
                vocab_terms: args.get_parsed("vocab", defaults.vocab_terms)?,
                seed: args.get_parsed("seed", defaults.seed)?,
                ..defaults
            })
        }
        "inex" => generate_inex(&InexConfig {
            articles: args.get_parsed("size", 3_000usize)?,
            seed: args.get_parsed("seed", InexConfig::default().seed)?,
            ..Default::default()
        }),
        other => return Err(ArgError(format!("unknown dataset {other:?}"))),
    };
    let xml = to_xml(&tree);
    let mut f = std::fs::File::create(out).map_err(|e| ArgError(format!("{out}: {e}")))?;
    f.write_all(xml.as_bytes())
        .map_err(|e| ArgError(format!("{out}: {e}")))?;
    Ok(CmdOutput::ok(vec![format!(
        "wrote {} ({} nodes, {:.1} MB)",
        out,
        tree.len(),
        xml.len() as f64 / 1e6
    )]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("xclean_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn argv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn write_sample_xml(name: &str) -> String {
        let path = tmp(name);
        std::fs::write(
            &path,
            "<db><rec><t>health insurance</t></rec><rec><t>program instance</t></rec></db>",
        )
        .unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run(vec![]);
        assert_eq!(out.code, 1);
        assert!(out.lines[0].contains("USAGE"));
    }

    #[test]
    fn unknown_command_fails() {
        let out = run(argv(&["frobnicate"]));
        assert_eq!(out.code, 2);
    }

    #[test]
    fn suggest_from_xml() {
        let xml = write_sample_xml("suggest.xml");
        let out = run(argv(&["suggest", &xml, "helth", "insurance"]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        assert!(out.lines[0].contains("health insurance"), "{:?}", out.lines);
    }

    #[test]
    fn suggest_json_output() {
        let xml = write_sample_xml("suggest_json.xml");
        let out = run(argv(&["suggest", &xml, "helth", "insurance", "--json"]));
        assert_eq!(out.code, 0);
        let v: serde_json::Value = serde_json::from_str(&out.lines[0]).unwrap();
        assert_eq!(v[0]["query"], "health insurance");
        assert!(v[0]["entities"].as_u64().unwrap() > 0);
    }

    #[test]
    fn index_then_suggest_from_index() {
        let xml = write_sample_xml("roundtrip.xml");
        let idx = tmp("roundtrip.xci").to_string_lossy().into_owned();
        let out = run(argv(&["index", &xml, "--out", &idx]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        let out = run(argv(&["suggest", &idx, "helth", "insurance"]));
        assert_eq!(out.code, 0);
        assert!(out.lines[0].contains("health insurance"));
    }

    #[test]
    fn stats_command() {
        let xml = write_sample_xml("stats.xml");
        let out = run(argv(&["stats", &xml]));
        assert_eq!(out.code, 0);
        assert!(out.lines.iter().any(|l| l.starts_with("nodes")));
        assert!(out.lines.iter().any(|l| l.contains("vocabulary")));
    }

    #[test]
    fn generate_and_stat() {
        let path = tmp("gen.xml").to_string_lossy().into_owned();
        let out = run(argv(&["generate", "dblp", "--out", &path, "--size", "50"]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        let out = run(argv(&["stats", &path]));
        assert_eq!(out.code, 0);
    }

    #[test]
    fn semantics_and_config_flags() {
        let xml = write_sample_xml("flags.xml");
        for sem in ["node-type", "slca", "elca"] {
            let out = run(argv(&[
                "suggest",
                &xml,
                "helth",
                "insurance",
                "--semantics",
                sem,
                "--k",
                "3",
                "--gamma",
                "none",
                "--beta",
                "4",
            ]));
            assert_eq!(out.code, 0, "{sem}: {:?}", out.lines);
            assert!(out.lines[0].contains("health insurance"), "{sem}");
        }
    }

    #[test]
    fn preview_flag_prints_fragments() {
        let xml = write_sample_xml("preview.xml");
        let out = run(argv(&[
            "suggest",
            &xml,
            "helth",
            "insurance",
            "--preview",
            "2",
        ]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        assert!(
            out.lines
                .iter()
                .any(|l| l.contains("↳") && l.contains("health insurance")),
            "{:?}",
            out.lines
        );
    }

    #[test]
    fn bad_flags_are_rejected() {
        let xml = write_sample_xml("bad.xml");
        let out = run(argv(&["suggest", &xml, "x", "--nonsense", "1"]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("unknown option"));
        let out = run(argv(&["suggest", &xml, "x", "--semantics", "weird"]));
        assert_eq!(out.code, 2);
    }

    fn write_workload(name: &str) -> String {
        let path = tmp(name);
        std::fs::write(
            &path,
            "# sample workload\nhelth insurance\n\nprogram instence\nqqqq zzzz\n",
        )
        .unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn batch_mode_answers_every_query() {
        let xml = write_sample_xml("batch.xml");
        let wl = write_workload("batch.txt");
        for threads in ["1", "4"] {
            let out = run(argv(&[
                "suggest",
                &xml,
                "--batch",
                &wl,
                "--threads",
                threads,
            ]));
            assert_eq!(out.code, 0, "{threads}: {:?}", out.lines);
            // 3 query lines (comment + blank skipped) + 1 summary line
            // + 5 stage-table lines (header, slots, walk, rank, total).
            assert_eq!(out.lines.len(), 9, "{:?}", out.lines);
            assert!(out.lines[0].contains("health insurance"), "{:?}", out.lines);
            assert!(out.lines[1].contains("program instance"), "{:?}", out.lines);
            assert!(
                out.lines[2].contains("no valid suggestion"),
                "{:?}",
                out.lines
            );
            assert!(out.lines[3].contains("3 queries"), "{:?}", out.lines);
            assert!(out.lines[4].contains("stage"), "{:?}", out.lines);
            assert!(out.lines[6].contains("postings read"), "{:?}", out.lines);
        }
    }

    #[test]
    fn batch_mode_json_output() {
        let xml = write_sample_xml("batch_json.xml");
        let wl = write_workload("batch_json.txt");
        let out = run(argv(&[
            "suggest",
            &xml,
            "--batch",
            &wl,
            "--threads",
            "2",
            "--json",
        ]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        let v: serde_json::Value = serde_json::from_str(&out.lines[0]).unwrap();
        assert_eq!(v[0]["input"], "helth insurance");
        assert_eq!(v[0]["suggestions"][0]["query"], "health insurance");
        assert_eq!(v[2]["input"], "qqqq zzzz");
    }

    #[test]
    fn batch_and_inline_query_conflict() {
        let xml = write_sample_xml("batch_conflict.xml");
        let wl = write_workload("batch_conflict.txt");
        let out = run(argv(&["suggest", &xml, "helth", "--batch", &wl]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("--batch"), "{:?}", out.lines);
        let out = run(argv(&["suggest", &xml, "helth", "--threads", "0"]));
        assert_eq!(out.code, 2);
    }

    #[test]
    fn batch_results_are_thread_count_invariant() {
        let xml = write_sample_xml("batch_invariant.xml");
        let wl = write_workload("batch_invariant.txt");
        let mut outputs = Vec::new();
        for threads in ["1", "2", "8"] {
            let out = run(argv(&[
                "suggest",
                &xml,
                "--batch",
                &wl,
                "--threads",
                threads,
                "--json",
            ]));
            assert_eq!(out.code, 0);
            outputs.push(out.lines.join("\n"));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn index_build_subcommand_and_legacy_alias_agree() {
        let xml = write_sample_xml("build_forms.xml");
        let a = tmp("build_sub.xci").to_string_lossy().into_owned();
        let b = tmp("build_legacy.xci").to_string_lossy().into_owned();
        let out = run(argv(&["index", "build", &xml, "--out", &a]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        let out = run(argv(&["index", &xml, "--out", &b]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    }

    #[test]
    fn index_inspect_summarises_snapshot() {
        let xml = write_sample_xml("inspect.xml");
        let idx = tmp("inspect.xci").to_string_lossy().into_owned();
        assert_eq!(run(argv(&["index", "build", &xml, "--out", &idx])).code, 0);
        let out = run(argv(&["index", "inspect", &idx]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        let text = out.lines.join("\n");
        // The default build format is v2: checksummed, six sections.
        assert!(text.contains("format      v2"), "{text}");
        assert!(text.contains("(fnv1a, verified)"), "{text}");
        for sec in [
            "TREE",
            "DIRECT",
            "VOCAB",
            "POSTINGS",
            "PATHSTATS",
            "TOKENIZER",
        ] {
            assert!(text.contains(sec), "missing section {sec}: {text}");
        }
        // The sample corpus has 4 distinct ≥3-char terms over 5 nodes.
        assert!(text.contains("nodes       5"), "{text}");
        assert!(text.contains("terms       4"), "{text}");
        assert!(text.contains("tokenizer   min_len=3"), "{text}");
        // Inspect must agree with a full load.
        let corpus = storage::load_from_file(&idx).unwrap();
        assert!(text.contains(&format!("terms       {}", corpus.vocab().len())));
    }

    #[test]
    fn index_inspect_reports_v1_snapshots() {
        let xml = write_sample_xml("inspect_v1.xml");
        let idx = tmp("inspect_v1.xci").to_string_lossy().into_owned();
        assert_eq!(
            run(argv(&[
                "index", "build", &xml, "--out", &idx, "--format", "v1"
            ]))
            .code,
            0
        );
        let out = run(argv(&["index", "inspect", &idx]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        let text = out.lines.join("\n");
        assert!(text.contains("format      v1"), "{text}");
        assert!(text.contains("checksum    none"), "{text}");
        assert!(text.contains("nodes       5"), "{text}");
        for sec in ["TREE", "VOCAB", "POSTINGS", "TOKENIZER"] {
            assert!(text.contains(sec), "missing section {sec}: {text}");
        }
    }

    #[test]
    fn index_build_format_flag_selects_encoding() {
        let xml = write_sample_xml("format_flag.xml");
        let v1 = tmp("format_v1.xci").to_string_lossy().into_owned();
        let v2 = tmp("format_v2.xci").to_string_lossy().into_owned();
        assert_eq!(
            run(argv(&[
                "index", "build", &xml, "--out", &v1, "--format", "v1"
            ]))
            .code,
            0
        );
        assert_eq!(
            run(argv(&[
                "index", "build", &xml, "--out", &v2, "--format", "v2"
            ]))
            .code,
            0
        );
        assert!(std::fs::read(&v1).unwrap().starts_with(b"XCLIDX1\0"));
        assert!(std::fs::read(&v2).unwrap().starts_with(b"XCLIDX2\0"));
        // Both formats answer queries identically.
        let a = run(argv(&["suggest", &v1, "helth", "insurance", "--json"]));
        let b = run(argv(&["suggest", &v2, "helth", "insurance", "--json"]));
        assert_eq!(a.code, 0, "{:?}", a.lines);
        assert_eq!(a.lines, b.lines);
        let bad = run(argv(&[
            "index", "build", &xml, "--out", &v2, "--format", "v3",
        ]));
        assert_eq!(bad.code, 2);
        assert!(bad.lines[0].contains("--format"), "{:?}", bad.lines);
    }

    #[test]
    fn index_upgrade_rewrites_v1_as_v2() {
        let xml = write_sample_xml("upgrade.xml");
        let old = tmp("upgrade_v1.xci").to_string_lossy().into_owned();
        let new = tmp("upgrade_v2.xci").to_string_lossy().into_owned();
        assert_eq!(
            run(argv(&[
                "index", "build", &xml, "--out", &old, "--format", "v1"
            ]))
            .code,
            0
        );
        let out = run(argv(&["index", "upgrade", &old, "--out", &new]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        assert!(out.lines[0].contains("upgraded"), "{:?}", out.lines);
        assert!(std::fs::read(&new).unwrap().starts_with(b"XCLIDX2\0"));
        let a = run(argv(&["suggest", &old, "helth", "insurance", "--json"]));
        let b = run(argv(&["suggest", &new, "helth", "insurance", "--json"]));
        assert_eq!(a.lines, b.lines);
        // Usage errors.
        let out = run(argv(&["index", "upgrade", &old]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("--out"), "{:?}", out.lines);
    }

    #[test]
    fn index_inspect_rejects_non_snapshots() {
        let xml = write_sample_xml("inspect_bad.xml");
        let out = run(argv(&["index", "inspect", &xml]));
        assert_eq!(out.code, 2, "{:?}", out.lines);
        let out = run(argv(&["index", "inspect"]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("usage"), "{:?}", out.lines);
    }

    #[test]
    fn serve_validates_before_binding() {
        // Missing snapshot path.
        let out = run(argv(&["serve"]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("usage"), "{:?}", out.lines);
        // Nonexistent snapshot: the error points at `index build`.
        let out = run(argv(&["serve", "/nonexistent/corpus.xci"]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("index build"), "{:?}", out.lines);
        // Flag typos and zero-width pools are rejected up front.
        let xml = write_sample_xml("serve_flags.xml");
        let idx = tmp("serve_flags.xci").to_string_lossy().into_owned();
        assert_eq!(run(argv(&["index", "build", &xml, "--out", &idx])).code, 0);
        let out = run(argv(&["serve", &idx, "--cache-entires", "64"]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("unknown option"), "{:?}", out.lines);
        let out = run(argv(&["serve", &idx, "--threads", "0"]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("--threads"), "{:?}", out.lines);
        let out = run(argv(&["serve", &idx, "--port", "notaport"]));
        assert_eq!(out.code, 2);
        // Contradictory accept models and a zero connection cap are
        // rejected before binding.
        let out = run(argv(&["serve", &idx, "--event-loop", "--thread-pool"]));
        assert_eq!(out.code, 2);
        assert!(
            out.lines[0].contains("mutually exclusive"),
            "{:?}",
            out.lines
        );
        let out = run(argv(&["serve", &idx, "--max-connections", "0"]));
        assert_eq!(out.code, 2);
        assert!(
            out.lines[0].contains("--max-connections"),
            "{:?}",
            out.lines
        );
        // Contradictory slab modes are rejected before binding.
        let out = run(argv(&["serve", &idx, "--mmap", "--no-mmap"]));
        assert_eq!(out.code, 2);
        assert!(
            out.lines[0].contains("mutually exclusive"),
            "{:?}",
            out.lines
        );
    }

    #[test]
    fn index_shard_writes_snapshots_and_inspect_shows_membership() {
        let xml = write_sample_xml("shardcmd.xml");
        let prefix = tmp("shardcmd").to_string_lossy().into_owned();
        let out = run(argv(&[
            "index",
            "shard",
            &xml,
            "--shards",
            "2",
            "--seed",
            "7",
            "--out-prefix",
            &prefix,
        ]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        assert!(
            out.lines.iter().any(|l| l.contains("partitioner seed 7")),
            "{:?}",
            out.lines
        );
        for i in 0..2 {
            let shard = format!("{prefix}-shard{i}-of-2.xci");
            assert!(std::path::Path::new(&shard).exists(), "missing {shard}");
            let out = run(argv(&["index", "inspect", &shard]));
            assert_eq!(out.code, 0, "{:?}", out.lines);
            let line = out
                .lines
                .iter()
                .find(|l| l.starts_with("shard"))
                .unwrap_or_else(|| panic!("no shard line: {:?}", out.lines));
            assert!(line.contains(&format!("{i} of 2")), "{line}");
            assert!(line.contains("seed 7"), "{line}");
            assert!(line.contains("parent fingerprint"), "{line}");
        }
        // A plain (unsharded) snapshot prints no shard line.
        let idx = tmp("shardcmd_plain.xci").to_string_lossy().into_owned();
        assert_eq!(run(argv(&["index", "build", &xml, "--out", &idx])).code, 0);
        let out = run(argv(&["index", "inspect", &idx]));
        assert!(
            !out.lines.iter().any(|l| l.starts_with("shard")),
            "{:?}",
            out.lines
        );
        // Usage errors: --shards and --out-prefix are required, and
        // --name is a catalog option.
        let out = run(argv(&["index", "shard", &xml, "--out-prefix", &prefix]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("--shards"), "{:?}", out.lines);
        let out = run(argv(&["index", "shard", &xml, "--shards", "2"]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("--out-prefix"), "{:?}", out.lines);
        let out = run(argv(&[
            "index",
            "shard",
            &xml,
            "--shards",
            "2",
            "--out-prefix",
            &prefix,
            "--name",
            "x",
        ]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("--catalog"), "{:?}", out.lines);
    }

    #[test]
    fn index_shard_assembles_a_catalog_and_serve_validates_it() {
        let xml = write_sample_xml("shardcat.xml");
        let prefix = tmp("shardcat").to_string_lossy().into_owned();
        let cat = tmp("shardcat.xcc").to_string_lossy().into_owned();
        let _ = std::fs::remove_file(&cat);
        let out = run(argv(&[
            "index",
            "shard",
            &xml,
            "--shards",
            "2",
            "--out-prefix",
            &prefix,
            "--catalog",
            &cat,
            "--name",
            "dblp",
        ]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        let loaded = Catalog::load(&cat).expect("catalog loads");
        assert_eq!(loaded.corpora.len(), 1);
        assert_eq!(loaded.corpora[0].name, "dblp");
        assert_eq!(loaded.corpora[0].snapshots.len(), 2);
        // Shards next to the catalog file are stored relative to it.
        assert!(
            loaded.corpora[0].snapshots[0].starts_with("shardcat-shard"),
            "{:?}",
            loaded.corpora[0].snapshots
        );
        // Same name replaces; a second name appends.
        let out = run(argv(&[
            "index",
            "shard",
            &xml,
            "--shards",
            "2",
            "--out-prefix",
            &prefix,
            "--catalog",
            &cat,
            "--name",
            "dblp",
        ]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        assert_eq!(Catalog::load(&cat).unwrap().corpora.len(), 1);
        let prefix2 = tmp("shardcat2").to_string_lossy().into_owned();
        let out = run(argv(&[
            "index",
            "shard",
            &xml,
            "--shards",
            "1",
            "--out-prefix",
            &prefix2,
            "--catalog",
            &cat,
            "--name",
            "inex",
        ]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        let loaded = Catalog::load(&cat).unwrap();
        assert_eq!(loaded.corpora.len(), 2);
        assert_eq!(loaded.corpora[1].name, "inex");
        // An invalid corpus name is rejected at save time.
        let out = run(argv(&[
            "index",
            "shard",
            &xml,
            "--shards",
            "1",
            "--out-prefix",
            &prefix2,
            "--catalog",
            &cat,
            "--name",
            "Not/Valid",
        ]));
        assert_eq!(out.code, 2, "{:?}", out.lines);
        // serve: catalog and positional snapshot are mutually exclusive,
        // tuning flags are per-corpus, and a missing shard file is
        // reported by path before binding.
        let idx = tmp("shardcat_plain.xci").to_string_lossy().into_owned();
        assert_eq!(run(argv(&["index", "build", &xml, "--out", &idx])).code, 0);
        let out = run(argv(&["serve", &idx, "--catalog", &cat]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("not both"), "{:?}", out.lines);
        let out = run(argv(&["serve", "--catalog", &cat, "--gamma", "5"]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("per-corpus"), "{:?}", out.lines);
        let out = run(argv(&["serve", "--catalog", "/nonexistent/cat.xcc"]));
        assert_eq!(out.code, 2);
        let gone = format!("{prefix}-shard1-of-2.xci");
        std::fs::remove_file(&gone).unwrap();
        let out = run(argv(&["serve", "--catalog", &cat]));
        assert_eq!(out.code, 2);
        assert!(
            out.lines[0].contains("shardcat-shard1-of-2.xci"),
            "{:?}",
            out.lines
        );
    }

    #[test]
    fn missing_file_is_reported() {
        let out = run(argv(&["stats", "/nonexistent/file.xml"]));
        assert_eq!(out.code, 2);
        assert!(out.lines[0].contains("error"));
    }

    #[test]
    fn suggest_prints_stage_table() {
        let xml = write_sample_xml("stage_table.xml");
        let out = run(argv(&["suggest", &xml, "helth", "insurance"]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        let table: Vec<&String> = out.lines.iter().filter(|l| l.starts_with("  ")).collect();
        assert_eq!(table.len(), 5, "{:?}", out.lines);
        assert!(table[0].contains("stage") && table[0].contains("counters"));
        assert!(table[1].contains("slots"));
        assert!(table[2].contains("walk") && table[2].contains("postings read"));
        assert!(table[3].contains("rank") && table[3].contains("candidates"));
        assert!(table[4].contains("total") && table[4].contains("suggestion"));
        for row in &table[1..] {
            assert!(row.contains("ms") && row.contains('%'), "{row}");
        }
    }

    #[test]
    fn trace_out_writes_chrome_trace_json() {
        let xml = write_sample_xml("trace.xml");
        let trace = tmp("trace.json").to_string_lossy().into_owned();
        let out = run(argv(&[
            "suggest",
            &xml,
            "helth",
            "insurance",
            "--trace-out",
            &trace,
        ]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        assert!(
            out.lines.iter().any(|l| l.contains("trace:")),
            "{:?}",
            out.lines
        );
        let text = std::fs::read_to_string(&trace).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        let events = v["traceEvents"].as_array().expect("traceEvents array");
        assert!(!events.is_empty());
        let names: Vec<&str> = events.iter().map(|e| e["name"].as_str().unwrap()).collect();
        for expected in ["suggest", "slot_build", "variant_gen", "rank"] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        assert!(
            names
                .iter()
                .any(|n| *n == "walk_accumulate" || *n == "score_partition"),
            "{names:?}"
        );
        for e in events {
            assert_eq!(e["ph"].as_str(), Some("X"), "{e:?}");
            assert!(e["ts"].as_u64().is_some() || e["ts"].as_f64().is_some());
            assert!(e["dur"].as_u64().is_some() || e["dur"].as_f64().is_some());
        }
    }

    #[test]
    fn metrics_json_reports_counters_and_stage_histograms() {
        let xml = write_sample_xml("metrics.xml");
        let out = run(argv(&[
            "suggest",
            &xml,
            "helth",
            "insurance",
            "--metrics-json",
        ]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        let v: serde_json::Value =
            serde_json::from_str(out.lines.last().unwrap()).expect("metrics JSON line");
        assert_eq!(v["counters"]["xclean_queries_total"].as_u64(), Some(1));
        assert!(
            v["counters"]["xclean_postings_read_total"]
                .as_u64()
                .unwrap()
                > 0
        );
        let stages = [
            "xclean_stage_slot_nanos",
            "xclean_stage_walk_nanos",
            "xclean_stage_rank_nanos",
            "xclean_stage_partition_walk_nanos",
            "xclean_stage_total_nanos",
        ];
        for s in stages {
            let h = &v["histograms"][s];
            assert!(h["count"].as_u64().unwrap() >= 1, "{s}: {h:?}");
            for q in ["p50", "p95", "p99"] {
                assert!(h[q].as_u64().is_some(), "{s} missing {q}");
            }
        }
    }

    #[test]
    fn batch_metrics_aggregate_across_workers() {
        let xml = write_sample_xml("batch_metrics.xml");
        let wl = write_workload("batch_metrics.txt");
        let out = run(argv(&[
            "suggest",
            &xml,
            "--batch",
            &wl,
            "--threads",
            "4",
            "--metrics-json",
        ]));
        assert_eq!(out.code, 0, "{:?}", out.lines);
        let v: serde_json::Value = serde_json::from_str(out.lines.last().unwrap()).unwrap();
        assert_eq!(v["counters"]["xclean_queries_total"].as_u64(), Some(3));
        assert_eq!(
            v["histograms"]["xclean_stage_total_nanos"]["count"].as_u64(),
            Some(3)
        );
    }
}
