//! `xclean` — command-line interface to the XClean suggestion engine.
//!
//! Run `xclean help` for usage.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let out = xclean_cli::run(raw);
    for line in &out.lines {
        println!("{line}");
    }
    std::process::exit(out.code);
}
