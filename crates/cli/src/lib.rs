//! Library surface of the `xclean` command-line interface.
//!
//! The binary in this crate (and the workspace-root `xclean` shim) are
//! thin wrappers over [`run`]: parsing, dispatch, and all command logic
//! live here so they are unit-testable and reusable from the umbrella
//! crate.

#![forbid(unsafe_code)]

mod args;
pub mod commands;

pub use commands::{run, CmdOutput, USAGE};
