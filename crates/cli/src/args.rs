//! Minimal dependency-free argument parsing for the `xclean` binary.
//!
//! Supports `--flag value`, `--flag=value`, boolean `--flag`, and
//! positional arguments, with typed accessors and unknown-flag detection.

use std::collections::HashMap;

/// Parsed command-line arguments: positionals plus `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Parsing/validation failure with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments. `bool_flags` lists flags that take no value;
    /// every other `--flag` consumes the next token (or its `=` suffix).
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        bool_flags: &[&str],
    ) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = raw.into_iter();
        while let Some(tok) = it.next() {
            if let Some(flag) = tok.strip_prefix("--") {
                if let Some((k, v)) = flag.split_once('=') {
                    out.options.insert(k.to_string(), v.to_string());
                } else if bool_flags.contains(&flag) {
                    out.flags.push(flag.to_string());
                } else {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError(format!("--{flag} expects a value")))?;
                    out.options.insert(flag.to_string(), v);
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a boolean flag was passed.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A typed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse {v:?}"))),
        }
    }

    /// Rejects any option/flag not in `known` (catches typos in flags —
    /// fitting, for a spelling suggester).
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), ArgError> {
        for k in self.options.keys().chain(self.flags.iter()) {
            if !known.contains(&k.as_str()) {
                return Err(ArgError(format!("unknown option --{k}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string()), &["verbose"]).unwrap()
    }

    #[test]
    fn positionals_and_options() {
        let a = parse(&["suggest", "data.xml", "--k", "5", "--beta=2.5"]);
        assert_eq!(a.positional(), ["suggest", "data.xml"]);
        assert_eq!(a.get("k"), Some("5"));
        assert_eq!(a.get("beta"), Some("2.5"));
        assert_eq!(a.get_parsed("k", 10usize).unwrap(), 5);
        assert_eq!(a.get_parsed("missing", 10usize).unwrap(), 10);
    }

    #[test]
    fn bool_flags() {
        let a = parse(&["--verbose", "cmd"]);
        assert!(a.has_flag("verbose"));
        assert_eq!(a.positional(), ["cmd"]);
    }

    #[test]
    fn missing_value_errors() {
        let e = Args::parse(["--k".to_string()], &[]).unwrap_err();
        assert!(e.0.contains("expects a value"));
    }

    #[test]
    fn bad_parse_errors() {
        let a = parse(&["--k", "abc"]);
        assert!(a.get_parsed("k", 1usize).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = parse(&["--k", "3"]);
        assert!(a.reject_unknown(&["k"]).is_ok());
        assert!(a.reject_unknown(&["beta"]).is_err());
    }
}
