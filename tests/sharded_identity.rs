//! Sharded-vs-unsharded bit-identity at realistic corpus scale.
//!
//! The contract (ISSUE PR 9, DESIGN.md §16): for every shard count and
//! every worker-thread count, the scatter-gather [`ShardedEngine`]
//! returns *bit-identical* responses — same suggestions, same order,
//! same `f64` score bits, same pruning decisions — to the plain
//! [`XCleanEngine`] over the unsharded parent corpus. The unit suite in
//! `crates/xclean/src/sharded.rs` pins this on a six-article corpus;
//! this suite re-pins it where the decomposition actually matters:
//!
//!  * a 1000-publication DBLP corpus (tier-1, always runs) across
//!    threads {1, 2, 8} × shards {1, 2, 4, 8};
//!  * the 5k large-tier corpus (the same scale `scale_100k.rs` uses for
//!    its non-ignored contracts), gated behind `XCLEAN_BENCH_TIER=large`
//!    so the bench-regression CI job — not every `cargo test` — pays
//!    for it.
//!
//! Triage notes live in `tests/README.md` ("Sharded bit-identity").

use xclean_suite::datagen::{
    generate_dblp, generate_large_dblp, make_workload, DblpConfig, LargeDblpConfig, Perturbation,
    WorkloadSpec,
};
use xclean_suite::index::{partition_corpus, CorpusIndex};
use xclean_suite::xclean::{ShardedEngine, SuggestResponse, XCleanConfig, XCleanEngine};

/// Full bit-level equality, score bits included: `==` on `f64` would
/// accept `-0.0 == 0.0` and reorderings that round the same way.
fn assert_bit_identical(q: &[String], a: &SuggestResponse, b: &SuggestResponse, what: &str) {
    assert_eq!(
        a.suggestions.len(),
        b.suggestions.len(),
        "{what}: q={q:?} suggestion count"
    );
    for (i, (x, y)) in a.suggestions.iter().zip(b.suggestions.iter()).enumerate() {
        assert_eq!(x.terms, y.terms, "{what}: q={q:?} rank {i} terms");
        assert_eq!(
            x.log_score.to_bits(),
            y.log_score.to_bits(),
            "{what}: q={q:?} rank {i} score bits ({} vs {})",
            x.log_score,
            y.log_score
        );
        assert_eq!(x.distances, y.distances, "{what}: q={q:?} rank {i}");
        assert_eq!(x.entity_count, y.entity_count, "{what}: q={q:?} rank {i}");
    }
    // Scoring effort must be conserved by the scatter — per-shard
    // counters sum to exactly the unsharded totals.
    assert_eq!(
        a.stats.candidates_enumerated, b.stats.candidates_enumerated,
        "{what}: q={q:?} candidates"
    );
    assert_eq!(
        a.stats.entities_scored, b.stats.entities_scored,
        "{what}: q={q:?} entities"
    );
    assert_eq!(a.stats.pruning, b.stats.pruning, "{what}: q={q:?} pruning");
}

fn workload(corpus: &CorpusIndex, n_queries: usize, seed: u64) -> Vec<Vec<String>> {
    let set = make_workload(
        corpus,
        &WorkloadSpec {
            n_queries,
            seed,
            ..WorkloadSpec::dblp(Perturbation::Rand)
        },
    );
    set.cases.into_iter().map(|c| c.dirty).collect()
}

/// Runs the full thread × shard matrix against one parent corpus.
/// `baseline_parent` is a second build of the same deterministic corpus
/// (`CorpusIndex` is intentionally not `Clone` — snapshots own slabs).
fn check_matrix(
    parent: CorpusIndex,
    baseline_parent: CorpusIndex,
    queries: &[Vec<String>],
    config: &XCleanConfig,
    what: &str,
) {
    let baseline = XCleanEngine::from_corpus(baseline_parent, config.clone());
    let expected: Vec<SuggestResponse> = queries
        .iter()
        .map(|q| baseline.suggest_keywords(q))
        .collect();
    for nshards in [1usize, 2, 4, 8] {
        for threads in [1usize, 2, 8] {
            let shards = partition_corpus(&parent, nshards, 42).unwrap();
            let cfg = XCleanConfig {
                num_threads: threads,
                ..config.clone()
            };
            let engine = ShardedEngine::from_shards(shards, cfg).unwrap();
            for (q, want) in queries.iter().zip(&expected) {
                let got = engine.suggest_keywords(q);
                assert_bit_identical(
                    q,
                    want,
                    &got,
                    &format!("{what} nshards={nshards} threads={threads}"),
                );
            }
            // The batch entry point must agree with query-at-a-time.
            let batch = engine.suggest_many_keywords(queries);
            for (q, (want, got)) in queries.iter().zip(expected.iter().zip(&batch)) {
                assert_bit_identical(
                    q,
                    want,
                    got,
                    &format!("{what} batch nshards={nshards} threads={threads}"),
                );
            }
        }
    }
}

fn dblp_1000() -> CorpusIndex {
    CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 1000,
        ..Default::default()
    }))
}

#[test]
fn dblp_1000_bit_identity_across_threads_and_shards() {
    let parent = dblp_1000();
    let queries = workload(&parent, 30, 9001);
    assert!(queries.len() >= 25, "workload too small: {}", queries.len());
    check_matrix(
        parent,
        dblp_1000(),
        &queries,
        &XCleanConfig::default(),
        "dblp-1000",
    );
}

#[test]
fn dblp_1000_bit_identity_under_binding_gamma() {
    // A binding γ budget makes the merge order observable: the replay
    // must reproduce the sequential table's evictions exactly.
    let parent = dblp_1000();
    let queries = workload(&parent, 15, 77);
    let config = XCleanConfig {
        gamma: Some(3),
        ..Default::default()
    };
    check_matrix(parent, dblp_1000(), &queries, &config, "dblp-1000/gamma=3");
}

/// The 5k large-tier contract from the acceptance criteria. Costs tens
/// of seconds in release; only the bench-regression CI job opts in:
///
/// ```text
/// XCLEAN_BENCH_TIER=large cargo test --release --test sharded_identity
/// ```
#[test]
fn large_tier_5k_bit_identity_across_threads_and_shards() {
    if std::env::var("XCLEAN_BENCH_TIER").as_deref() != Ok("large") {
        eprintln!("skipped: set XCLEAN_BENCH_TIER=large to run the 5k matrix");
        return;
    }
    let build = || {
        CorpusIndex::build(generate_large_dblp(&LargeDblpConfig {
            publications: 5_000,
            ..Default::default()
        }))
    };
    let parent = build();
    let queries = workload(&parent, 20, 4242);
    check_matrix(
        parent,
        build(),
        &queries,
        &XCleanConfig::default(),
        "large-5k",
    );
}
