//! v2 snapshot bit-identity harness.
//!
//! The contract (ISSUE PR 4, DESIGN.md §11): an engine serving a **v2
//! snapshot through a mapped slab** — postings and path statistics
//! decoded lazily out of the file bytes — returns *bit-identical*
//! responses (same suggestions, same order, same `f64` score bits) to an
//! engine over the **v1 in-memory load** of the same corpus, on dblp at
//! three scales plus inex, at 1 and 8 worker threads. Laziness, mmap,
//! and the columnar tree encoding must all be semantically invisible.

use xclean_suite::datagen::{
    generate_dblp, generate_inex, make_workload, DblpConfig, InexConfig, Perturbation, WorkloadSpec,
};
use xclean_suite::index::{storage, CorpusIndex, OpenOptions, SlabMode};
use xclean_suite::xclean::{SuggestResponse, XCleanConfig, XCleanEngine};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xclean_snapshot_v2");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Perturbed workload (random + rule-based misspellings) over a corpus.
fn workload(index: &CorpusIndex, n: usize, seed: u64) -> Vec<Vec<String>> {
    let mut queries = Vec::new();
    for (p, s) in [(Perturbation::Rand, seed), (Perturbation::Rule, seed + 1)] {
        let set = make_workload(
            index,
            &WorkloadSpec {
                n_queries: n / 2,
                seed: s,
                ..WorkloadSpec::dblp(p)
            },
        );
        queries.extend(set.cases.into_iter().map(|c| c.dirty));
    }
    queries
}

/// Bit-level equality of two responses (timings excluded).
fn assert_identical(name: &str, q: &[String], a: &SuggestResponse, b: &SuggestResponse) {
    let label = q.join(" ");
    assert_eq!(
        a.suggestions.len(),
        b.suggestions.len(),
        "{name}: count diverged for {label:?}"
    );
    for (i, (x, y)) in a.suggestions.iter().zip(b.suggestions.iter()).enumerate() {
        assert_eq!(x.terms, y.terms, "{name}: terms at rank {i} for {label:?}");
        assert_eq!(
            x.log_score.to_bits(),
            y.log_score.to_bits(),
            "{name}: score bits at rank {i} for {label:?}: {} vs {}",
            x.log_score,
            y.log_score
        );
        assert_eq!(x.tokens, y.tokens, "{name}: tokens for {label:?}");
        assert_eq!(x.distances, y.distances, "{name}: distances for {label:?}");
        assert_eq!(
            x.entity_count, y.entity_count,
            "{name}: entities for {label:?}"
        );
    }
    assert_eq!(
        a.stats.candidates_enumerated, b.stats.candidates_enumerated,
        "{name}: candidate enumeration diverged for {label:?}"
    );
}

/// Saves `index` as both formats, opens v1 into memory and v2 through a
/// mapped slab, and asserts every workload query answers bit-identically
/// at 1 and 8 worker threads.
fn assert_v2_mapped_matches_v1_in_memory(name: &str, index: CorpusIndex, queries: &[Vec<String>]) {
    let v1_path = tmp(&format!("{name}.v1.xci"));
    let v2_path = tmp(&format!("{name}.v2.xci"));
    storage::save_to_file(&index, &v1_path).unwrap();
    storage::save_to_file_v2(&index, &v2_path).unwrap();
    drop(index);

    let (v1_corpus, v1_report) = storage::open_file(
        &v1_path,
        &OpenOptions {
            mode: SlabMode::Owned,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(v1_report.format_version, 1, "{name}");
    assert!(!v1_report.mapped, "{name}");
    let (v2_corpus, v2_report) = storage::open_file(&v2_path, &OpenOptions::default()).unwrap();
    assert_eq!(v2_report.format_version, 2, "{name}");
    #[cfg(unix)]
    assert!(v2_report.mapped, "{name}: v2 open should mmap on unix");
    assert!(v2_report.checksum.is_some(), "{name}");

    let v1_corpus = std::sync::Arc::new(v1_corpus);
    let v2_corpus = std::sync::Arc::new(v2_corpus);
    let mut non_empty = 0usize;
    for threads in [1usize, 8] {
        let config = XCleanConfig {
            num_threads: threads,
            batch_size: 5, // not a divisor of the workload sizes
            ..Default::default()
        };
        let v1_engine = XCleanEngine::from_shared(v1_corpus.clone(), config.clone());
        let v2_engine = XCleanEngine::from_shared(v2_corpus.clone(), config);
        let a = v1_engine.suggest_many_keywords(queries);
        let b = v2_engine.suggest_many_keywords(queries);
        assert_eq!(a.len(), queries.len());
        for (q, (x, y)) in queries.iter().zip(a.iter().zip(b.iter())) {
            assert_identical(name, q, x, y);
            non_empty += usize::from(!x.suggestions.is_empty());
        }
    }
    assert!(
        non_empty * 4 >= queries.len(),
        "{name}: workload too degenerate — {non_empty} non-empty answers"
    );
}

#[test]
fn dblp_v2_mapped_matches_v1_across_sizes() {
    for (publications, n_queries) in [(50, 12), (300, 16), (1000, 20)] {
        let index = CorpusIndex::build(generate_dblp(&DblpConfig {
            publications,
            ..Default::default()
        }));
        let queries = workload(&index, n_queries, 4000 + publications as u64);
        assert_v2_mapped_matches_v1_in_memory(&format!("dblp_{publications}"), index, &queries);
    }
}

#[test]
fn inex_v2_mapped_matches_v1() {
    let index = CorpusIndex::build(generate_inex(&InexConfig {
        articles: 150,
        ..Default::default()
    }));
    let queries = workload(&index, 16, 4200);
    assert_v2_mapped_matches_v1_in_memory("inex_150", index, &queries);
}

/// Fingerprints key the server's response cache, so they must not depend
/// on *how* the snapshot bytes are held (owned copy vs mapping), and an
/// `index upgrade` of a v1 snapshot must produce the same bytes as a
/// direct v2 save of the same corpus (the encoder is canonical).
#[test]
fn v2_fingerprint_is_slab_mode_invariant_and_upgrade_is_canonical() {
    let index = CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 200,
        ..Default::default()
    }));
    let v1_path = tmp("fp.v1.xci");
    let v2_path = tmp("fp.v2.xci");
    let upgraded_path = tmp("fp.upgraded.xci");
    storage::save_to_file(&index, &v1_path).unwrap();
    storage::save_to_file_v2(&index, &v2_path).unwrap();
    storage::upgrade_file(&v1_path, &upgraded_path).unwrap();
    assert_eq!(
        std::fs::read(&v2_path).unwrap(),
        std::fs::read(&upgraded_path).unwrap(),
        "upgrade of a v1 snapshot must be byte-identical to a direct v2 save"
    );

    let (owned, owned_report) = storage::open_file(
        &v2_path,
        &OpenOptions {
            mode: SlabMode::Owned,
            ..Default::default()
        },
    )
    .unwrap();
    let (mapped, mapped_report) = storage::open_file(&v2_path, &OpenOptions::default()).unwrap();
    assert!(!owned_report.mapped);
    assert_eq!(owned_report.checksum, mapped_report.checksum);

    let owned_engine = XCleanEngine::from_corpus(owned, XCleanConfig::default());
    let mapped_engine = XCleanEngine::from_corpus(mapped, XCleanConfig::default());
    assert_eq!(
        owned_engine.fingerprint(),
        mapped_engine.fingerprint(),
        "slab mode leaked into the fingerprint"
    );

    // Sanity: both engines agree on an actual query.
    let queries = workload(owned_engine.corpus(), 8, 900);
    for q in &queries {
        assert_identical(
            "fp",
            q,
            &owned_engine.suggest_keywords(q),
            &mapped_engine.suggest_keywords(q),
        );
    }
}
