//! Property tests on the evaluation-workload machinery: the guarantees
//! the experiment harness silently relies on must hold for arbitrary
//! generator parameters.

use proptest::prelude::*;
use xclean_suite::datagen::{generate_dblp, make_workload, DblpConfig, Perturbation, WorkloadSpec};
use xclean_suite::fastss::edit_distance;
use xclean_suite::index::CorpusIndex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed/size, RAND workloads satisfy the paper's two rules:
    /// dirty tokens are out-of-vocabulary, and short tokens are spared.
    #[test]
    fn rand_workload_rules_hold(seed in 0u64..1000, pubs in 100usize..400) {
        let corpus = CorpusIndex::build(generate_dblp(&DblpConfig {
            publications: pubs,
            seed,
            ..Default::default()
        }));
        let ws = make_workload(&corpus, &WorkloadSpec {
            n_queries: 10,
            min_len: 1,
            max_len: 4,
            seed: seed.wrapping_mul(31),
            perturbation: Perturbation::Rand,
            dataset: "T".into(),
        });
        for case in &ws.cases {
            prop_assert_eq!(case.dirty.len(), case.clean.len());
            let mut changed = 0;
            for (d, c) in case.dirty.iter().zip(case.clean.iter()) {
                if d != c {
                    changed += 1;
                    prop_assert!(corpus.vocab().get(d).is_none(), "{d} in vocab");
                    prop_assert_eq!(edit_distance(d, c), 1);
                    prop_assert!(c.chars().count() >= 5);
                }
                // Clean keywords always come from the vocabulary.
                prop_assert!(corpus.vocab().get(c).is_some());
            }
            prop_assert!(changed >= 1, "dirty query identical to clean");
        }
    }

    /// Clean workloads are entity-coherent: a query's keywords co-occur in
    /// at least one child-of-root subtree, so the ground truth provably
    /// has results.
    #[test]
    fn clean_workloads_have_answers(seed in 0u64..1000) {
        let corpus = CorpusIndex::build(generate_dblp(&DblpConfig {
            publications: 200,
            seed,
            ..Default::default()
        }));
        let ws = make_workload(&corpus, &WorkloadSpec {
            n_queries: 8,
            min_len: 2,
            max_len: 3,
            seed: seed ^ 0xABCD,
            perturbation: Perturbation::Clean,
            dataset: "T".into(),
        });
        let tree = corpus.tree();
        for case in &ws.cases {
            let coherent = tree.children(tree.root()).any(|e| {
                case.clean.iter().all(|k| {
                    let t = corpus.vocab().get(k).expect("clean keyword in vocab");
                    corpus
                        .postings(t)
                        .nodes()
                        .iter()
                        .any(|&n| tree.is_ancestor_or_self(e, n))
                })
            });
            prop_assert!(coherent, "query {:?} has no entity", case.clean);
        }
    }
}
