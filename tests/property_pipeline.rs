//! Cross-crate property tests: invariants of the full pipeline on
//! arbitrary generated inputs.

use proptest::prelude::*;
use xclean_suite::index::CorpusIndex;
use xclean_suite::xclean::{XCleanConfig, XCleanEngine};
use xclean_suite::xmltree::{parse_document, to_xml, TreeBuilder, XmlTree};

/// Builds an arbitrary small tree from a shape script and word pool.
fn arbitrary_tree(shape: &[u8], words: &[String]) -> XmlTree {
    let mut b = TreeBuilder::new("root");
    let mut depth = 0usize;
    let mut w = 0usize;
    for &s in shape {
        match s % 4 {
            0 => {
                b.open(["rec", "sec", "item"][s as usize % 3]);
                depth += 1;
            }
            1 if depth > 0 => {
                b.close();
                depth -= 1;
            }
            _ => {
                if !words.is_empty() {
                    let text = format!(
                        "{} {}",
                        words[w % words.len()],
                        words[(w + 1) % words.len()]
                    );
                    b.leaf("t", &text);
                    w += 2;
                }
            }
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// writer → parser is the identity on structure, labels and text.
    #[test]
    fn xml_roundtrip(
        shape in proptest::collection::vec(0u8..4, 0..60),
        words in proptest::collection::vec("[a-z]{3,9}", 1..8),
    ) {
        let tree = arbitrary_tree(&shape, &words);
        let xml = to_xml(&tree);
        let back = parse_document(&xml).expect("own output must parse");
        prop_assert_eq!(tree.len(), back.len());
        for n in tree.iter() {
            prop_assert_eq!(tree.label_name(n), back.label_name(n));
            prop_assert_eq!(tree.text(n), back.text(n));
            prop_assert_eq!(tree.depth(n), back.depth(n));
            prop_assert_eq!(tree.subtree_end(n), back.subtree_end(n));
        }
    }

    /// Every suggestion the engine ever returns is valid: positive entity
    /// count, one term per input keyword, terms from the vocabulary, and
    /// monotonically non-increasing scores.
    #[test]
    fn suggestions_are_always_well_formed(
        shape in proptest::collection::vec(0u8..4, 5..60),
        words in proptest::collection::vec("[a-e]{3,7}", 2..8),
        query in proptest::collection::vec("[a-e]{2,8}", 1..4),
    ) {
        let tree = arbitrary_tree(&shape, &words);
        let engine = XCleanEngine::new(tree, XCleanConfig::default());
        let keywords: Vec<String> = query;
        let r = engine.suggest_keywords(&keywords);
        let mut prev = f64::INFINITY;
        for s in &r.suggestions {
            prop_assert!(s.entity_count > 0);
            prop_assert_eq!(s.terms.len(), keywords.len());
            for t in &s.terms {
                prop_assert!(engine.corpus().vocab().get(t).is_some());
            }
            prop_assert!(s.log_score <= prev);
            prop_assert!(s.log_score.is_finite());
            prev = s.log_score;
        }
    }

    /// The γ bound is respected and never changes which scores are
    /// reported for the candidates it keeps.
    #[test]
    fn gamma_keeps_true_scores(
        shape in proptest::collection::vec(0u8..4, 10..50),
        words in proptest::collection::vec("[a-c]{3,5}", 2..6),
    ) {
        let tree = arbitrary_tree(&shape, &words);
        let corpus = CorpusIndex::build(tree);
        if corpus.vocab().is_empty() {
            return Ok(());
        }
        let engine = XCleanEngine::from_corpus(corpus, XCleanConfig::default());
        let kw = vec![engine.corpus().vocab().term(xclean_suite::index::TokenId(0)).to_string()];
        let full = engine.suggest_keywords_with(&kw, &XCleanConfig {
            gamma: None,
            ..Default::default()
        });
        let pruned = engine.suggest_keywords_with(&kw, &XCleanConfig {
            gamma: Some(2),
            ..Default::default()
        });
        // Every pruned survivor appears in the unpruned run with the same
        // score (pruning may drop candidates, never corrupt them).
        for p in &pruned.suggestions {
            if let Some(f) = full.suggestions.iter().find(|f| f.terms == p.terms) {
                prop_assert!((f.log_score - p.log_score).abs() < 1e-9);
            }
        }
    }
}
