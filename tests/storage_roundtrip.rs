//! Snapshot round-trip property tests.
//!
//! The serving path (`xclean serve`, DESIGN.md §10) answers every query
//! from an index loaded off disk, so persistence must be *semantically
//! invisible*: an engine over `load_from_file(save_to_file(index))` has
//! to return bit-identical suggestions — same terms, same order, same
//! `f64` score bits — to an engine over the freshly built index. This
//! suite checks that property over generated corpora of several sizes
//! and perturbed workloads, plus the cheap summary path used by
//! `xclean index inspect`.

use xclean_suite::datagen::{
    generate_dblp, generate_inex, make_workload, DblpConfig, InexConfig, Perturbation, WorkloadSpec,
};
use xclean_suite::index::{storage, CorpusIndex};
use xclean_suite::xclean::{XCleanConfig, XCleanEngine};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xclean_storage_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Saves `fresh`, loads it back, and asserts both engines agree bit-for-bit
/// on every workload query.
fn assert_roundtrip_identical(name: &str, fresh_index: CorpusIndex, queries: &[Vec<String>]) {
    let path = tmp(name);
    storage::save_to_file(&fresh_index, &path).unwrap();
    let loaded_index = storage::load_from_file(&path).unwrap();

    // Structural equality first — cheaper to diagnose than score drift.
    assert_eq!(
        fresh_index.tree().len(),
        loaded_index.tree().len(),
        "{name}: nodes"
    );
    assert_eq!(
        fresh_index.vocab().len(),
        loaded_index.vocab().len(),
        "{name}: terms"
    );
    assert_eq!(
        fresh_index.vocab().total_tokens(),
        loaded_index.vocab().total_tokens(),
        "{name}: tokens"
    );
    assert_eq!(
        fresh_index.element_count(),
        loaded_index.element_count(),
        "{name}: elements"
    );

    // The summary fast path must agree with the full load.
    let summary = storage::summarize_file(&path).unwrap();
    assert_eq!(
        summary.nodes,
        loaded_index.tree().len(),
        "{name}: summary nodes"
    );
    assert_eq!(
        summary.terms,
        loaded_index.vocab().len(),
        "{name}: summary terms"
    );
    assert_eq!(
        summary.total_tokens,
        loaded_index.vocab().total_tokens(),
        "{name}: summary tokens"
    );
    assert_eq!(
        summary.total_bytes as u64,
        std::fs::metadata(&path).unwrap().len(),
        "{name}: summary size"
    );

    let fresh = XCleanEngine::from_corpus(fresh_index, XCleanConfig::default());
    let loaded = XCleanEngine::from_corpus(loaded_index, XCleanConfig::default());
    // Engines over index states that only differ by a disk round-trip
    // must fingerprint identically — otherwise a restarted server would
    // never hit entries a previous process would have written.
    assert_eq!(
        fresh.fingerprint(),
        loaded.fingerprint(),
        "{name}: fingerprint"
    );

    let mut non_empty = 0usize;
    for q in queries {
        let a = fresh.suggest_keywords(q);
        let b = loaded.suggest_keywords(q);
        let label = q.join(" ");
        assert_eq!(
            a.suggestions.len(),
            b.suggestions.len(),
            "{name}: count diverged for {label:?}"
        );
        for (i, (x, y)) in a.suggestions.iter().zip(b.suggestions.iter()).enumerate() {
            assert_eq!(x.terms, y.terms, "{name}: terms at rank {i} for {label:?}");
            assert_eq!(
                x.log_score.to_bits(),
                y.log_score.to_bits(),
                "{name}: score bits at rank {i} for {label:?}"
            );
            assert_eq!(x.distances, y.distances, "{name}: distances for {label:?}");
            assert_eq!(
                x.entity_count, y.entity_count,
                "{name}: entities for {label:?}"
            );
        }
        non_empty += usize::from(!a.suggestions.is_empty());
    }
    assert!(
        non_empty * 2 >= queries.len(),
        "{name}: workload too degenerate — only {non_empty}/{} answered",
        queries.len()
    );
}

/// Perturbed workload over a corpus: both random-noise and rule-based
/// misspellings, so the round-trip is exercised on the paths that touch
/// FastSS variants and postings, not just clean lookups.
fn workload(index: &CorpusIndex, n: usize, seed: u64) -> Vec<Vec<String>> {
    let mut queries = Vec::new();
    for (p, s) in [(Perturbation::Rand, seed), (Perturbation::Rule, seed + 1)] {
        let set = make_workload(
            index,
            &WorkloadSpec {
                n_queries: n / 2,
                seed: s,
                ..WorkloadSpec::dblp(p)
            },
        );
        queries.extend(set.cases.into_iter().map(|c| c.dirty));
    }
    queries
}

#[test]
fn dblp_roundtrip_is_bit_identical_across_sizes() {
    for (publications, n_queries) in [(50, 20), (300, 30), (1000, 40)] {
        let index = CorpusIndex::build(generate_dblp(&DblpConfig {
            publications,
            ..Default::default()
        }));
        let queries = workload(&index, n_queries, 1000 + publications as u64);
        assert_roundtrip_identical(&format!("dblp_{publications}.xci"), index, &queries);
    }
}

#[test]
fn inex_roundtrip_is_bit_identical() {
    let index = CorpusIndex::build(generate_inex(&InexConfig {
        articles: 150,
        ..Default::default()
    }));
    let queries = workload(&index, 30, 77);
    assert_roundtrip_identical("inex_150.xci", index, &queries);
}

/// The committed v1 fixture must keep loading verbatim: compatibility
/// with already-deployed snapshots is a contract, not an accident of the
/// current encoder (CI additionally upgrades it and diffs the answers).
#[test]
fn committed_v1_fixture_stays_loadable() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tiny_v1.xci");
    let summary = storage::summarize_file(&path).unwrap();
    assert_eq!(summary.format_version, 1);
    assert_eq!(summary.checksum, None);
    let index = storage::load_from_file(&path).unwrap();
    assert_eq!(index.tree().len(), summary.nodes);
    assert_eq!(index.vocab().len(), summary.terms);
    let engine = XCleanEngine::from_corpus(index, XCleanConfig::default());
    let r = engine.suggest("helth insurance");
    assert_eq!(r.suggestions[0].terms, vec!["health", "insurance"]);
}

#[test]
fn double_roundtrip_is_byte_stable() {
    // save → load → save must reproduce the identical byte stream: the
    // encoder is canonical, so snapshots can be content-addressed and
    // diffed across deployments.
    let index = CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 120,
        ..Default::default()
    }));
    let p1 = tmp("stable_1.xci");
    let p2 = tmp("stable_2.xci");
    storage::save_to_file(&index, &p1).unwrap();
    let loaded = storage::load_from_file(&p1).unwrap();
    storage::save_to_file(&loaded, &p2).unwrap();
    assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
}
