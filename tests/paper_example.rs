//! Integration test reproducing the paper's running example end to end
//! (Figure 2, Examples 2–5, §V-C).
//!
//! The tree: records of types `/a/c` and `/a/d` containing the tokens
//! `tree`, `trees`, `trie`, `icde`, `icdt`. The dirty query `tree icdt`
//! has the candidate space {tree, trees, trie} × {icdt, icde} (Example 2
//! with ε = 1) and XClean must return only *connected* candidates, scored
//! by Eq. 10.

use xclean_suite::xclean::{XCleanConfig, XCleanEngine};
use xclean_suite::xmltree::parse_document;

/// A faithful rendering of Figure 2's sample tree: the anchor walk of
/// Example 5 visits subtrees 1.2, 1.3, 1.4.
fn paper_tree() -> &'static str {
    "<a>\
        <c><x>tree</x><x>trees</x></c>\
        <c><x>trie</x><x>tree</x><y>icde</y></c>\
        <d><x>trie</x><y>icdt icde</y></d>\
        <d><x>trie</x><y>icde</y></d>\
    </a>"
}

fn engine() -> XCleanEngine {
    XCleanEngine::new(
        parse_document(paper_tree()).unwrap(),
        XCleanConfig {
            epsilon: 1,
            min_depth: 2,
            depth_decay: 0.8,
            ..Default::default()
        },
    )
}

#[test]
fn example2_variant_sets() {
    let e = engine();
    let gen = e.variant_generator();
    let names = |kw: &str| -> Vec<String> {
        gen.variants(kw)
            .iter()
            .map(|v| e.corpus().vocab().term(v.token).to_string())
            .collect()
    };
    assert_eq!(names("tree"), vec!["tree", "trees", "trie"]);
    assert_eq!(names("icdt"), vec!["icdt", "icde"]);
}

#[test]
fn example5_suggestions_are_valid_and_connected() {
    let e = engine();
    let r = e.suggest("tree icdt");
    assert!(!r.suggestions.is_empty());
    let all: Vec<String> = r.suggestions.iter().map(|s| s.query_string()).collect();
    // Candidates observed in Example 5's walk: C1 = "trie icde" (entities
    // 1.3, 1.4 of type /a/d), C2 = "tree icde" (entity 1.2 of type /a/c),
    // C3 = "trie icdt" (type /a/d).
    assert!(all.contains(&"trie icde".to_string()), "{all:?}");
    assert!(all.contains(&"tree icde".to_string()), "{all:?}");
    assert!(all.contains(&"trie icdt".to_string()), "{all:?}");
    // The literal dirty query has no connected entity: never suggested.
    assert!(!all.contains(&"tree icdt".to_string()), "{all:?}");
    // Every suggestion is valid: at least one supporting entity.
    for s in &r.suggestions {
        assert!(s.entity_count > 0);
    }
}

#[test]
fn example3_result_types() {
    // For candidate "trie icde" the best result type is /a/d (Example 3's
    // computation with r = 0.8 — adapted to this tree's counts).
    let e = engine();
    let r = e.suggest("trie icde");
    let top = &r.suggestions[0];
    assert_eq!(top.terms, vec!["trie", "icde"]);
    let path = top.result_path.expect("node-type semantics sets a path");
    assert_eq!(
        e.corpus()
            .tree()
            .paths()
            .display(path, e.corpus().tree().labels()),
        "/a/d"
    );
}

#[test]
fn min_depth_gate_prunes_root_connections() {
    // "tree icdt" only co-occur via the root (depth 1). With d = 2 the
    // pair is never materialised as a candidate — the paper's key
    // pruning insight (§V-B).
    let e = engine();
    let r = e.suggest("tree icdt");
    assert!(r.rank_of(&["tree", "icdt"]).is_none());
    // Sanity: the same engine with min_depth = 1 does connect them at the
    // root (the root path /a gets result-type status).
    let cfg = XCleanConfig {
        epsilon: 1,
        min_depth: 1,
        ..Default::default()
    };
    let kw: Vec<String> = vec!["tree".into(), "icdt".into()];
    let r1 = e.suggest_keywords_with(&kw, &cfg);
    assert!(r1.rank_of(&["tree", "icdt"]).is_some());
}

#[test]
fn anchor_walk_skips_first_subtree() {
    // Subtree 1.1 contains only "tree" — no icdt/icde variant — so the
    // anchor/skip logic must not enumerate candidates there. Observable
    // effect: postings are skipped.
    let e = engine();
    let r = e.suggest("tree icdt");
    assert!(
        r.stats.subtrees >= 2,
        "visited {} subtrees",
        r.stats.subtrees
    );
    assert!(r.stats.access.read > 0);
}
