//! Integration tests comparing the three entity semantics (node-type,
//! SLCA, ELCA) on the same corpora: structural relationships that must
//! hold regardless of scoring details.

use xclean_suite::datagen::{generate_dblp, DblpConfig};
use xclean_suite::xclean::{
    elca_of_lists, run_elca, run_slca, slca_of_lists, KeywordSlot, Semantics, VariantGenerator,
    XCleanConfig, XCleanEngine,
};
use xclean_suite::xmltree::{parse_document, NodeId};

#[test]
fn slca_set_is_subset_of_elca_set() {
    // Structural invariant: every SLCA is an ELCA.
    let tree = generate_dblp(&DblpConfig {
        publications: 300,
        seed: 61,
        ..Default::default()
    });
    let corpus = xclean_suite::index::CorpusIndex::build(tree);
    let tree = corpus.tree();
    // Use the two most frequent tokens as the keyword sets.
    let mut by_cf: Vec<(u64, u32)> = (0..corpus.vocab().len() as u32)
        .map(|i| (corpus.vocab().cf(xclean_suite::index::TokenId(i)), i))
        .collect();
    by_cf.sort_unstable_by(|a, b| b.cmp(a));
    let lists: Vec<Vec<NodeId>> = by_cf[..2]
        .iter()
        .map(|&(_, t)| {
            corpus
                .postings(xclean_suite::index::TokenId(t))
                .nodes()
                .to_vec()
        })
        .collect();
    let slcas = slca_of_lists(tree, &lists);
    let elcas = elca_of_lists(tree, &lists, 1);
    assert!(!slcas.is_empty());
    for s in &slcas {
        assert!(elcas.contains(s), "SLCA {s:?} not in ELCA set");
    }
    assert!(elcas.len() >= slcas.len());
}

#[test]
fn all_semantics_find_the_clean_correction() {
    let xml = "<db>\
        <rec><a>smith</a><t>health insurance policy</t></rec>\
        <rec><a>jones</a><t>program instance analysis</t></rec>\
        <rec><a>smith</a><t>insurance markets</t></rec>\
    </db>";
    for semantics in [Semantics::NodeType, Semantics::Slca, Semantics::Elca] {
        let e = XCleanEngine::new(parse_document(xml).unwrap(), XCleanConfig::default())
            .with_semantics(semantics);
        let r = e.suggest("helth insurance");
        assert!(
            !r.suggestions.is_empty(),
            "{semantics:?} found no suggestions"
        );
        assert_eq!(
            r.suggestions[0].terms,
            vec!["health", "insurance"],
            "{semantics:?} top suggestion wrong"
        );
    }
}

#[test]
fn elca_scores_superset_of_slca_candidates() {
    // On a fixed corpus, every candidate surviving the SLCA run must also
    // survive the ELCA run (more entities can only add candidates).
    let tree = generate_dblp(&DblpConfig {
        publications: 400,
        seed: 71,
        ..Default::default()
    });
    let corpus = xclean_suite::index::CorpusIndex::build(tree);
    let gen = VariantGenerator::build(&corpus, 2, 14);
    let cfg = XCleanConfig {
        gamma: None,
        ..Default::default()
    };
    for q in ["keyword search", "databse systems"] {
        let slots: Vec<KeywordSlot> = q
            .split_whitespace()
            .map(|k| KeywordSlot {
                keyword: k.to_string(),
                variants: gen.variants(k),
            })
            .collect();
        let slca = run_slca(&corpus, &slots, &cfg);
        let elca = run_elca(&corpus, &slots, &cfg);
        let elca_tokens: Vec<_> = elca.candidates.iter().map(|c| &c.tokens).collect();
        for c in &slca.candidates {
            assert!(
                elca_tokens.contains(&&c.tokens),
                "candidate {:?} in SLCA but not ELCA for {q}",
                c.tokens
            );
        }
    }
}
