//! Cross-validation of Algorithm 1 against the naïve per-candidate oracle
//! on generated corpora — the strongest end-to-end correctness check in
//! the suite: the single-pass anchor/skip/accumulate machinery must
//! produce exactly the scores of the brute-force evaluator.

use xclean_suite::baselines::run_naive;
use xclean_suite::datagen::{generate_dblp, generate_inex, DblpConfig, InexConfig};
use xclean_suite::index::CorpusIndex;
use xclean_suite::xclean::{run_xclean, KeywordSlot, VariantGenerator, XCleanConfig};

fn check_agreement(corpus: &CorpusIndex, queries: &[&str], epsilon: usize) {
    let gen = VariantGenerator::build(corpus, epsilon, 14);
    let cfg = XCleanConfig {
        epsilon,
        gamma: None, // pruning off: the oracle keeps everything
        ..Default::default()
    };
    for q in queries {
        let keywords: Vec<&str> = q.split_whitespace().collect();
        let slots: Vec<KeywordSlot> = keywords
            .iter()
            .map(|k| KeywordSlot {
                keyword: k.to_string(),
                variants: gen.variants(k),
            })
            .collect();
        let fast = run_xclean(corpus, &slots, &cfg);
        let slow = run_naive(corpus, &slots, &cfg);
        assert_eq!(
            fast.candidates.len(),
            slow.len(),
            "query {q:?}: candidate sets differ: fast {:?} vs slow {:?}",
            fast.candidates
                .iter()
                .map(|c| &c.tokens)
                .collect::<Vec<_>>(),
            slow.iter().map(|c| &c.tokens).collect::<Vec<_>>(),
        );
        for (f, s) in fast.candidates.iter().zip(slow.iter()) {
            assert_eq!(f.tokens, s.tokens, "query {q:?}");
            assert!(
                (f.log_score - s.log_score).abs() < 1e-9,
                "query {q:?}: {} vs {}",
                f.log_score,
                s.log_score
            );
            assert_eq!(f.entity_count, s.entity_count, "query {q:?}");
        }
    }
}

#[test]
fn dblp_corpus_agreement() {
    let corpus = CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 800,
        seed: 99,
        ..Default::default()
    }));
    check_agreement(
        &corpus,
        &[
            "keyword search",
            "keywrd search",
            "databse systems smith",
            "quury optimization",
            "jones indexing",
            "streem procesing",
            "xml",
            "helth insurance",
        ],
        2,
    );
}

#[test]
fn inex_corpus_agreement() {
    let corpus = CorpusIndex::build(generate_inex(&InexConfig {
        articles: 150,
        seed: 77,
        ..Default::default()
    }));
    check_agreement(
        &corpus,
        &[
            "history empire",
            "anciemt history",
            "mountain valey river",
            "religous tradition",
            "skyscrapir",
        ],
        2,
    );
}

#[test]
fn agreement_under_doc_length_prior() {
    use xclean_suite::xclean::EntityPrior;
    let corpus = CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 400,
        seed: 31,
        ..Default::default()
    }));
    let gen = VariantGenerator::build(&corpus, 2, 14);
    let cfg = XCleanConfig {
        gamma: None,
        prior: EntityPrior::DocLength,
        ..Default::default()
    };
    for q in ["keyword search", "databse systems", "jones indexing"] {
        let slots: Vec<KeywordSlot> = q
            .split_whitespace()
            .map(|k| KeywordSlot {
                keyword: k.to_string(),
                variants: gen.variants(k),
            })
            .collect();
        let fast = run_xclean(&corpus, &slots, &cfg);
        let slow = run_naive(&corpus, &slots, &cfg);
        assert_eq!(fast.candidates.len(), slow.len(), "query {q:?}");
        for (f, s) in fast.candidates.iter().zip(slow.iter()) {
            assert_eq!(f.tokens, s.tokens, "query {q:?}");
            assert!((f.log_score - s.log_score).abs() < 1e-9, "query {q:?}");
        }
    }
}

#[test]
fn agreement_under_jelinek_mercer_smoothing() {
    let corpus = CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 300,
        seed: 47,
        ..Default::default()
    }));
    let gen = VariantGenerator::build(&corpus, 2, 14);
    let cfg = XCleanConfig {
        gamma: None,
        smoothing: Some(xclean_suite::lm::Smoothing::JelinekMercer { lambda: 0.4 }),
        ..Default::default()
    };
    for q in ["keyword search", "databse systems"] {
        let slots: Vec<KeywordSlot> = q
            .split_whitespace()
            .map(|k| KeywordSlot {
                keyword: k.to_string(),
                variants: gen.variants(k),
            })
            .collect();
        let fast = run_xclean(&corpus, &slots, &cfg);
        let slow = run_naive(&corpus, &slots, &cfg);
        assert_eq!(fast.candidates.len(), slow.len(), "query {q:?}");
        for (f, s) in fast.candidates.iter().zip(slow.iter()) {
            assert_eq!(f.tokens, s.tokens, "query {q:?}");
            assert!((f.log_score - s.log_score).abs() < 1e-9, "query {q:?}");
        }
    }
}

#[test]
fn agreement_across_min_depths() {
    let corpus = CorpusIndex::build(generate_inex(&InexConfig {
        articles: 80,
        seed: 5,
        ..Default::default()
    }));
    let gen = VariantGenerator::build(&corpus, 1, 14);
    for d in [1u32, 2, 3, 4] {
        let cfg = XCleanConfig {
            epsilon: 1,
            gamma: None,
            min_depth: d,
            ..Default::default()
        };
        let slots: Vec<KeywordSlot> = ["history", "empire"]
            .iter()
            .map(|k| KeywordSlot {
                keyword: k.to_string(),
                variants: gen.variants(k),
            })
            .collect();
        let fast = run_xclean(&corpus, &slots, &cfg);
        let slow = run_naive(&corpus, &slots, &cfg);
        assert_eq!(fast.candidates.len(), slow.len(), "d={d}");
        for (f, s) in fast.candidates.iter().zip(slow.iter()) {
            assert_eq!(f.tokens, s.tokens, "d={d}");
            assert!((f.log_score - s.log_score).abs() < 1e-9, "d={d}");
        }
    }
}
