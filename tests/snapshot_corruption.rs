//! Corruption robustness for the v2 snapshot format.
//!
//! Contract (ISSUE PR 4): any truncation or bit flip of a v2 snapshot —
//! at section boundaries or anywhere else — surfaces as a `StorageError`
//! from every entry point (`from_bytes`, `open_file`, `summarize`), and
//! never as a panic or an attempted oversized allocation. Declared counts
//! are clamped against the remaining input before any allocation, which
//! the hostile-varint cases exercise directly with checksum verification
//! switched off (with it on, the checksum masks every payload edit).

use bytes::Bytes;
use xclean_suite::datagen::{generate_dblp, DblpConfig};
use xclean_suite::index::{storage, CorpusIndex, OpenOptions};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xclean_snapshot_corruption");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn snapshot() -> Vec<u8> {
    let index = CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 40,
        ..Default::default()
    }));
    storage::to_bytes_v2(&index).to_vec()
}

/// Reads the v2 header (magic 8 + checksum 8 + count 1 + 17-byte table
/// entries) and returns every structural boundary: header fields, each
/// section's start and end.
fn boundaries(bytes: &[u8]) -> Vec<usize> {
    let count = bytes[16] as usize;
    let mut out = vec![0, 8, 16, 17, 17 + 17 * count];
    for i in 0..count {
        let e = 17 + i * 17;
        let off = u64::from_le_bytes(bytes[e + 1..e + 9].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[e + 9..e + 17].try_into().unwrap()) as usize;
        out.push(off);
        out.push(off + len);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Every read path must reject `bytes`; the file-backed paths are
/// exercised with checksum verification both on and off, so structural
/// validation has to hold on its own.
fn assert_rejected(name: &str, bytes: &[u8]) {
    assert!(
        storage::from_bytes(Bytes::from(bytes.to_vec())).is_err(),
        "{name}: from_bytes accepted corrupt input"
    );
    assert!(
        storage::summarize(bytes).is_err(),
        "{name}: summarize accepted corrupt input"
    );
    // Tests in this binary run concurrently — every case gets its own file.
    static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let path = tmp(&format!("corrupt_{n}.xci"));
    std::fs::write(&path, bytes).unwrap();
    for verify_checksum in [true, false] {
        let opts = OpenOptions {
            verify_checksum,
            ..Default::default()
        };
        assert!(
            storage::open_file(&path, &opts).is_err(),
            "{name}: open_file(verify_checksum={verify_checksum}) accepted corrupt input"
        );
    }
}

#[test]
fn truncation_at_every_boundary_and_step_is_rejected() {
    let bytes = snapshot();
    let mut cuts: Vec<usize> = Vec::new();
    for b in boundaries(&bytes) {
        cuts.extend([b.saturating_sub(1), b, (b + 1).min(bytes.len())]);
    }
    cuts.extend((0..bytes.len()).step_by(97));
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts {
        if cut >= bytes.len() {
            continue;
        }
        assert_rejected(
            &format!("truncated at {cut}/{}", bytes.len()),
            &bytes[..cut],
        );
    }
}

#[test]
fn bit_flips_at_boundaries_and_random_offsets_are_rejected() {
    let bytes = snapshot();
    let mut offsets: Vec<usize> = boundaries(&bytes)
        .into_iter()
        .filter(|&b| b < bytes.len())
        .collect();
    // Fixed-seed xorshift so every run hits the same "random" offsets.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..200 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        offsets.push((state % bytes.len() as u64) as usize);
    }
    offsets.sort_unstable();
    offsets.dedup();
    for off in offsets {
        for bit in [0u8, 3, 7] {
            let mut corrupt = bytes.clone();
            corrupt[off] ^= 1 << bit;
            // The checksum-verified paths must reject any payload flip;
            // header flips fail the structural checks instead.
            assert!(
                storage::from_bytes(Bytes::from(corrupt.clone())).is_err(),
                "bit {bit} at {off}: from_bytes accepted the flip"
            );
            assert!(
                storage::summarize(&corrupt[..]).is_err(),
                "bit {bit} at {off}: summarize accepted the flip"
            );
            let path = tmp(&format!("flip_{off}_{bit}.xci"));
            std::fs::write(&path, &corrupt).unwrap();
            assert!(
                storage::open_file(&path, &OpenOptions::default()).is_err(),
                "bit {bit} at {off}: open_file accepted the flip"
            );
        }
    }
}

/// Hostile length prefixes: overwrite the first bytes of each section
/// with a maximal varint. With checksum verification disabled the count
/// clamps are the only line of defence — the load must fail fast with an
/// error, not allocate terabytes or panic.
#[test]
fn hostile_varint_counts_are_clamped_not_allocated() {
    let bytes = snapshot();
    let count = bytes[16] as usize;
    let huge_varint: [u8; 10] = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
    for i in 0..count {
        let e = 17 + i * 17;
        let id = bytes[e];
        let off = u64::from_le_bytes(bytes[e + 1..e + 9].try_into().unwrap()) as usize;
        let mut corrupt = bytes.clone();
        let end = (off + huge_varint.len()).min(corrupt.len());
        corrupt[off..end].copy_from_slice(&huge_varint[..end - off]);
        let path = tmp(&format!("hostile_{id}.xci"));
        std::fs::write(&path, &corrupt).unwrap();
        for verify_checksum in [true, false] {
            let opts = OpenOptions {
                verify_checksum,
                ..Default::default()
            };
            assert!(
                storage::open_file(&path, &opts).is_err(),
                "section id {id}: hostile count accepted (verify_checksum={verify_checksum})"
            );
        }
    }
}

/// Degenerate inputs: empty file, magic-only, header claiming sections
/// beyond the file, and a section table pointing outside the file.
#[test]
fn degenerate_headers_are_rejected() {
    assert!(storage::from_bytes(Bytes::new()).is_err());
    assert!(storage::summarize(&b""[..]).is_err());
    assert!(storage::from_bytes(Bytes::from(b"XCLIDX2\0".to_vec())).is_err());

    let bytes = snapshot();
    // Section count inflated: the table would run past the file.
    let mut corrupt = bytes.clone();
    corrupt[16] = 0xFF;
    assert_rejected("inflated section count", &corrupt);

    // First section offset pushed past the end of the file.
    let mut corrupt = bytes.clone();
    let far = (bytes.len() as u64 + 1).to_le_bytes();
    corrupt[18..26].copy_from_slice(&far);
    assert_rejected("offset past EOF", &corrupt);

    // Duplicate section ids.
    let mut corrupt = bytes;
    corrupt[17 + 17] = corrupt[17]; // second entry takes the first's id
    assert_rejected("duplicate section id", &corrupt);
}
