//! Integration test: the block-compressed posting store must agree with
//! the in-memory lists on a realistic generated corpus, and its
//! decode-on-skip behaviour must actually avoid work.

use xclean_suite::datagen::{generate_dblp, DblpConfig};
use xclean_suite::index::{BlockedPostingList, CorpusIndex, TokenId, BLOCK_SIZE};

fn corpus() -> CorpusIndex {
    CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 2_000,
        seed: 91,
        ..Default::default()
    }))
}

#[test]
fn blocked_lists_agree_with_plain_on_generated_corpus() {
    let c = corpus();
    for t in 0..c.vocab().len() as u32 {
        let plain = c.postings(TokenId(t));
        let blocked = BlockedPostingList::from_plain(plain);
        assert_eq!(blocked.len(), plain.len());
        let mut cursor = blocked.cursor();
        for i in 0..plain.len() {
            let want = plain.get(i);
            let got = cursor.current().expect("entry present");
            assert_eq!(got.node, want.node, "token {t} entry {i}");
            assert_eq!(got.path, want.path);
            assert_eq!(got.tf, want.tf);
            assert_eq!(got.dewey.as_slice(), want.dewey);
            cursor.advance();
        }
        assert!(cursor.current().is_none());
    }
}

#[test]
fn skipping_saves_decodes_on_long_lists() {
    let c = corpus();
    // The longest posting list (the most frequent token).
    let longest = (0..c.vocab().len() as u32)
        .map(TokenId)
        .max_by_key(|&t| c.postings(t).len())
        .unwrap();
    let plain = c.postings(longest);
    assert!(
        plain.len() > BLOCK_SIZE * 4,
        "corpus too small for this test: {} postings",
        plain.len()
    );
    let blocked = BlockedPostingList::from_plain(plain);

    // Probe ~5 spread-out targets: decode cost must stay far below a
    // full drain.
    let mut cursor = blocked.cursor();
    let n = plain.len();
    for frac in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        let target = plain.get((n as f64 * frac) as usize).node;
        cursor.skip_to(target);
        assert_eq!(cursor.current().unwrap().node, target);
    }
    assert!(
        cursor.blocks_decoded() <= 10,
        "decoded {} of {} blocks",
        cursor.blocks_decoded(),
        blocked.block_count()
    );
    assert!(blocked.block_count() > 10);
}

#[test]
fn encoded_size_is_compact() {
    let c = corpus();
    let mut encoded = 0usize;
    let mut entries = 0usize;
    for t in 0..c.vocab().len() as u32 {
        let plain = c.postings(TokenId(t));
        encoded += BlockedPostingList::from_plain(plain).encoded_bytes();
        entries += plain.len();
    }
    // Well under a naive 24-byte/entry flat layout.
    assert!(
        encoded < entries * 12,
        "encoded {encoded} bytes for {entries} entries"
    );
}
