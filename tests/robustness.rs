//! Robustness tests: degenerate, adversarial, and edge-case inputs must
//! never panic and must keep the engine's invariants.

use xclean_suite::xclean::{Semantics, XCleanConfig, XCleanEngine};
use xclean_suite::xmltree::parse_document;

fn engine() -> XCleanEngine {
    let xml = "<r>\
        <rec><t>alpha beta gamma</t></rec>\
        <rec><t>delta epsilon</t></rec>\
        <rec><t>schütze tagging</t></rec>\
    </r>";
    XCleanEngine::new(parse_document(xml).unwrap(), XCleanConfig::default())
}

#[test]
fn empty_query() {
    let e = engine();
    let r = e.suggest("");
    assert!(r.suggestions.is_empty());
}

#[test]
fn whitespace_and_punctuation_query() {
    let e = engine();
    assert!(e.suggest("   ").suggestions.is_empty());
    let r = e.suggest("alpha, beta!");
    assert!(!r.suggestions.is_empty());
    assert_eq!(r.suggestions[0].terms, vec!["alpha", "beta"]);
}

#[test]
fn unicode_keywords() {
    let e = engine();
    let r = e.suggest("schütze tagging");
    assert!(!r.suggestions.is_empty());
    // schütze → schütze at distance 0 (indexed as-is).
    assert_eq!(r.suggestions[0].terms[0], "schütze");
    // ASCII-folded variant still finds it within ε = 2.
    let r2 = e.suggest("schutze tagging");
    assert_eq!(r2.suggestions[0].terms[0], "schütze");
}

#[test]
fn very_long_query() {
    let e = engine();
    let q = vec!["alpha".to_string(); 12].join(" ");
    let r = e.suggest(&q);
    // 12 repetitions of the same keyword: each slot resolves to alpha;
    // the candidate must still be connected (all in one entity).
    for s in &r.suggestions {
        assert_eq!(s.terms.len(), 12);
    }
}

#[test]
fn query_of_garbage_tokens() {
    let e = engine();
    let r = e.suggest("zzzzz xxxxx qqqqq");
    assert!(r.suggestions.is_empty());
}

#[test]
fn mixed_known_and_garbage() {
    // One hopeless keyword empties the candidate space (Cartesian
    // product with an empty variant set).
    let e = engine();
    let r = e.suggest("alpha zzzzzzz");
    assert!(r.suggestions.is_empty());
}

#[test]
fn single_character_query() {
    let e = engine();
    let r = e.suggest("a");
    // "a" is within ε=2 of nothing long; may or may not match, but must
    // not panic and all results must be valid.
    for s in &r.suggestions {
        assert!(s.entity_count > 0);
    }
}

#[test]
fn numeric_query() {
    let e = engine();
    let _ = e.suggest("2009 1234");
}

#[test]
fn document_with_single_node() {
    let e = XCleanEngine::new(
        parse_document("<only>word here</only>").unwrap(),
        XCleanConfig::default(),
    );
    // Tokens exist only at depth 1 (the root) — below min_depth, so no
    // valid entity exists. Must not panic; returns nothing.
    let r = e.suggest("word");
    assert!(r.suggestions.is_empty());
}

#[test]
fn min_depth_deeper_than_tree() {
    let e = XCleanEngine::new(
        parse_document("<r><a>token</a></r>").unwrap(),
        XCleanConfig {
            min_depth: 10,
            ..Default::default()
        },
    );
    assert!(e.suggest("token").suggestions.is_empty());
}

#[test]
fn slca_on_degenerate_trees() {
    let e = XCleanEngine::new(
        parse_document("<r><a><b><c>deep token chain</c></b></a></r>").unwrap(),
        XCleanConfig::default(),
    )
    .with_semantics(Semantics::Slca);
    let r = e.suggest("deep token");
    assert!(!r.suggestions.is_empty());
    assert_eq!(r.suggestions[0].terms, vec!["deep", "token"]);
}

#[test]
fn duplicate_keywords() {
    let e = engine();
    let r = e.suggest("alpha alpha");
    if !r.suggestions.is_empty() {
        assert_eq!(r.suggestions[0].terms, vec!["alpha", "alpha"]);
    }
}

#[test]
fn tight_budget_configs_do_not_panic() {
    let e = engine();
    for gamma in [Some(1), Some(2), None] {
        for k in [1usize, 2, 100] {
            let cfg = XCleanConfig {
                gamma,
                k,
                max_candidates_per_subtree: 1,
                ..Default::default()
            };
            let kw: Vec<String> = vec!["alpha".into(), "beta".into()];
            let r = e.suggest_keywords_with(&kw, &cfg);
            assert!(r.suggestions.len() <= k);
        }
    }
}
