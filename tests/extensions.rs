//! Integration tests for the §VI extensions: space-edit expansion and
//! SLCA semantics interplay, plus index codec persistence.

use xclean_suite::index::{codec, CorpusIndex, TokenId};
use xclean_suite::xclean::{expand_space_edits, XCleanConfig, XCleanEngine};
use xclean_suite::xmltree::parse_document;

fn engine() -> XCleanEngine {
    let xml = "<docs>\
        <doc><t>powerpoint slides design</t></doc>\
        <doc><t>power point presentations</t></doc>\
        <doc><t>database systems</t></doc>\
    </docs>";
    XCleanEngine::new(parse_document(xml).unwrap(), XCleanConfig::default())
}

#[test]
fn space_edit_merge_then_suggest() {
    // "power point" should expand to "powerpoint", and the merged query
    // must itself be suggestible (it has entities).
    let e = engine();
    let kws = vec!["power".to_string(), "point".to_string()];
    let variants = expand_space_edits(e.corpus(), &kws, 1);
    assert!(variants.iter().any(|v| v.keywords == vec!["powerpoint"]));
    for v in &variants {
        let resp = e.suggest_keywords(&v.keywords);
        // Each expansion must produce at least one valid suggestion.
        assert!(
            !resp.suggestions.is_empty(),
            "no suggestions for {:?}",
            v.keywords
        );
    }
}

#[test]
fn space_edit_split_then_suggest() {
    let e = engine();
    let kws = vec!["powerpoint".to_string()];
    let variants = expand_space_edits(e.corpus(), &kws, 1);
    assert!(variants
        .iter()
        .any(|v| v.keywords == vec!["power", "point"]));
}

#[test]
fn combining_space_edits_with_typo_correction() {
    // A typo'd merged form: "powerpiont" → (typo fix) "powerpoint";
    // the τ=1 expansion of the *fixed* query reaches "power point".
    let e = engine();
    let r = e.suggest("powerpiont");
    assert_eq!(r.suggestions[0].terms, vec!["powerpoint"]);
    let expanded = expand_space_edits(e.corpus(), &r.suggestions[0].terms, 1);
    assert!(expanded
        .iter()
        .any(|v| v.keywords == vec!["power", "point"]));
}

#[test]
fn posting_lists_roundtrip_through_codec() {
    // The full index of a generated corpus must survive encode/decode —
    // the persistence path of the index.
    let corpus = CorpusIndex::build(xclean_suite::datagen::generate_dblp(
        &xclean_suite::datagen::DblpConfig {
            publications: 300,
            seed: 17,
            ..Default::default()
        },
    ));
    for t in 0..corpus.vocab().len() as u32 {
        let list = corpus.postings(TokenId(t));
        let encoded = codec::encode(list);
        let decoded = codec::decode(encoded).expect("decode");
        assert_eq!(&decoded, list, "token {t}");
    }
}

#[test]
fn persisted_index_yields_identical_suggestions() {
    use xclean_suite::index::storage;
    let tree = xclean_suite::datagen::generate_dblp(&xclean_suite::datagen::DblpConfig {
        publications: 400,
        seed: 41,
        ..Default::default()
    });
    let original = XCleanEngine::new(tree, XCleanConfig::default());
    let bytes = storage::to_bytes(original.corpus());
    let restored = XCleanEngine::from_corpus(
        storage::from_bytes(bytes).expect("load index"),
        XCleanConfig::default(),
    );
    for q in [
        "keyword serach",
        "databse systems",
        "jones indexng",
        "smith",
    ] {
        let a = original.suggest(q);
        let b = restored.suggest(q);
        assert_eq!(a.suggestions.len(), b.suggestions.len(), "query {q}");
        for (x, y) in a.suggestions.iter().zip(b.suggestions.iter()) {
            assert_eq!(x.terms, y.terms, "query {q}");
            assert!((x.log_score - y.log_score).abs() < 1e-12, "query {q}");
            assert_eq!(x.entity_count, y.entity_count, "query {q}");
        }
    }
}

#[test]
fn phonetic_variants_rescue_sound_alike_errors() {
    // §VI-A cognitive errors: "famous bouddhist places"-style sound-alike
    // misspellings beyond the edit threshold are recovered phonetically.
    let xml = "<db>\
        <rec><a>robert</a><t>gravitational waves detection</t></rec>\
        <rec><a>rupert</a><t>quantum computing</t></rec>\
    </db>";
    let plain = XCleanEngine::new(
        parse_document(xml).unwrap(),
        XCleanConfig {
            epsilon: 1,
            ..Default::default()
        },
    );
    let phonetic = XCleanEngine::new(
        parse_document(xml).unwrap(),
        XCleanConfig {
            epsilon: 1,
            phonetic_distance: Some(2),
            ..Default::default()
        },
    );
    // "rabard" is ≥2 edits from robert/rupert: invisible at ε=1...
    let kw = vec!["rabard".to_string(), "waves".to_string()];
    assert!(plain.suggest_keywords(&kw).suggestions.is_empty());
    // ...but shares their Soundex code.
    let r = phonetic.suggest_keywords(&kw);
    assert!(!r.suggestions.is_empty());
    assert_eq!(r.suggestions[0].terms, vec!["robert", "waves"]);
}

#[test]
fn storage_rejects_arbitrary_bytes_without_panicking() {
    use xclean_suite::index::storage;
    // Deterministic pseudo-random garbage, including inputs that start
    // with the valid magic.
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for len in [0usize, 1, 7, 8, 9, 64, 500] {
        for _ in 0..20 {
            let mut data: Vec<u8> = (0..len).map(|_| (next() & 0xFF) as u8).collect();
            assert!(storage::from_bytes(bytes::Bytes::from(data.clone())).is_err());
            if data.len() >= 8 {
                data[..8].copy_from_slice(b"XCLIDX1\0");
                // Must error (or in principle succeed) but never panic.
                let _ = storage::from_bytes(bytes::Bytes::from(data));
            }
        }
    }
}

#[test]
fn encoded_index_is_smaller_than_flat_representation() {
    let corpus = CorpusIndex::build(xclean_suite::datagen::generate_dblp(
        &xclean_suite::datagen::DblpConfig {
            publications: 500,
            seed: 23,
            ..Default::default()
        },
    ));
    let mut encoded = 0usize;
    let mut entries = 0usize;
    for t in 0..corpus.vocab().len() as u32 {
        let list = corpus.postings(TokenId(t));
        encoded += codec::encode(list).len();
        entries += list.len();
    }
    // Naive flat layout: node(4) + path(4) + tf(4) + ~3 dewey components
    // (12) = 24 bytes/entry.
    assert!(
        encoded < entries * 24 / 2,
        "encoded {encoded} vs flat {}",
        entries * 24
    );
}
