//! Robustness of the multi-tenant catalog metastore (DESIGN.md §16),
//! mirroring `snapshot_corruption.rs` for the `XCLCAT1` format.
//!
//! Contract (ISSUE PR 9): a catalog file is trusted only after magic,
//! whole-payload checksum, and structural validation all pass; any
//! truncation, bit flip, or hostile varint surfaces as a `CatalogError`
//! — never a panic, never an oversized allocation, never a silently
//! different config. Accepted inputs re-encode byte-for-byte (the
//! canonical-encoding property the `xclean index shard --catalog`
//! read-modify-write cycle depends on). A shard set declared by a valid
//! catalog whose file went missing must fail engine assembly with an
//! error naming the offending path.

use xclean_suite::datagen::{generate_dblp, DblpConfig};
use xclean_suite::index::slab::checksum64;
use xclean_suite::index::{partition_corpus, storage, CorpusIndex};
use xclean_suite::xclean::catalog::CATALOG_MAGIC;
use xclean_suite::xclean::sharded::ShardedEngineError;
use xclean_suite::xclean::{
    Catalog, CatalogError, CorpusSpec, ShardedEngine, XCleanConfig, XCleanEngine,
};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("xclean_catalog_robustness")
        .join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_catalog() -> Catalog {
    Catalog {
        corpora: vec![
            CorpusSpec {
                name: "dblp".into(),
                config: XCleanConfig {
                    epsilon: 2,
                    gamma: Some(64),
                    ..Default::default()
                },
                snapshots: vec!["dblp-shard0-of-2.xci".into(), "dblp-shard1-of-2.xci".into()],
            },
            CorpusSpec {
                name: "inex-09".into(),
                config: XCleanConfig::default(),
                snapshots: vec!["inex.xci".into()],
            },
        ],
    }
}

/// Reassembles a catalog image around an edited payload, recomputing the
/// checksum so the edit reaches the structural validation layer (with a
/// stale checksum every edit would stop at `CatalogError::Checksum`).
fn with_payload(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(CATALOG_MAGIC);
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[test]
fn roundtrip_is_byte_stable_through_the_filesystem() {
    let dir = tmp_dir("roundtrip");
    let path = dir.join("catalog.xcc");
    let catalog = sample_catalog();
    catalog.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let back = Catalog::load(&path).unwrap();
    assert_eq!(back, catalog);
    // Saving the loaded catalog reproduces the file byte for byte — the
    // read-modify-write cycle `index shard --catalog` runs is stable.
    let path2 = dir.join("catalog2.xcc");
    back.save(&path2).unwrap();
    assert_eq!(std::fs::read(&path2).unwrap(), bytes);
}

#[test]
fn truncation_at_every_length_is_rejected_without_panic() {
    let bytes = sample_catalog().encode().unwrap();
    for cut in 0..bytes.len() {
        assert!(Catalog::decode(&bytes[..cut]).is_err(), "cut at {cut}");
    }
}

#[test]
fn every_single_byte_flip_is_rejected_by_the_checksum() {
    let bytes = sample_catalog().encode().unwrap();
    for pos in 16..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x01;
        assert!(
            matches!(
                Catalog::decode(&flipped),
                Err(CatalogError::Checksum { .. })
            ),
            "payload flip at {pos} must fail the checksum"
        );
    }
    // Flips in the header fail earlier (magic) or as a checksum mismatch.
    for pos in 0..16 {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x01;
        assert!(Catalog::decode(&flipped).is_err(), "header flip at {pos}");
    }
}

/// The snapshot_corruption.rs discipline applied behind the checksum:
/// every single-byte payload edit, re-checksummed so it reaches the
/// decoder proper, either still decodes to a catalog whose re-encoding
/// is byte-stable, or errors cleanly. Nothing may panic or allocate on
/// hostile counts.
#[test]
fn structural_validation_holds_for_every_rechecksummed_payload_edit() {
    let bytes = sample_catalog().encode().unwrap();
    let payload = &bytes[16..];
    for pos in 0..payload.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut edited = payload.to_vec();
            edited[pos] ^= mask;
            match Catalog::decode(&with_payload(&edited)) {
                Ok(c) => {
                    let re = c.encode().unwrap();
                    assert_eq!(
                        &re[16..],
                        &edited[..],
                        "accepted edit at {pos}^{mask:#04x} must re-encode byte-stably"
                    );
                }
                Err(CatalogError::Checksum { .. }) => {
                    panic!("checksum was recomputed; edit at {pos} cannot fail it")
                }
                Err(_) => {}
            }
        }
    }
}

#[test]
fn hostile_varints_are_rejected_before_allocation() {
    // u64::MAX corpora declared in a 10-byte payload.
    let mut p = vec![0xFF; 9];
    p.push(0x01);
    assert!(matches!(
        Catalog::decode(&with_payload(&p)),
        Err(CatalogError::Corrupt(_))
    ));
    // An 11-byte varint overflows u64.
    let p = vec![0xFF; 11];
    assert!(matches!(
        Catalog::decode(&with_payload(&p)),
        Err(CatalogError::Corrupt("varint overflow"))
    ));
    // Non-minimal encoding of 1 (0x81 0x00): canonical form required.
    let p = vec![0x81, 0x00];
    assert!(matches!(
        Catalog::decode(&with_payload(&p)),
        Err(CatalogError::Corrupt("non-minimal varint"))
    ));
    // Trailing garbage after a valid catalog body.
    let mut bytes = sample_catalog().encode().unwrap();
    let mut payload = bytes.split_off(16);
    payload.push(0x00);
    assert!(matches!(
        Catalog::decode(&with_payload(&payload)),
        Err(CatalogError::Corrupt("trailing bytes after catalog"))
    ));
}

#[test]
fn missing_shard_file_error_names_the_offending_path() {
    let dir = tmp_dir("missing_shard");
    let parent = CorpusIndex::build(generate_dblp(&DblpConfig {
        publications: 30,
        ..Default::default()
    }));
    let shards = partition_corpus(&parent, 3, 5).unwrap();
    let mut snapshots = Vec::new();
    for shard in &shards {
        let meta = shard.shard_meta().unwrap();
        let name = format!("dblp-shard{}-of-{}.xci", meta.shard_id, meta.shard_count);
        storage::save_to_file_v2(shard, dir.join(&name)).unwrap();
        snapshots.push(name);
    }
    let catalog = Catalog {
        corpora: vec![CorpusSpec {
            name: "dblp".into(),
            config: XCleanConfig::default(),
            snapshots,
        }],
    };
    let cat_path = dir.join("catalog.xcc");
    catalog.save(&cat_path).unwrap();

    // Intact set: catalog → resolved paths → engine answers queries
    // bit-identically to the unsharded parent.
    let loaded = Catalog::load(&cat_path).unwrap();
    let paths = loaded.corpora[0].resolved_snapshots(&dir);
    let engine = ShardedEngine::load_snapshots(&paths, loaded.corpora[0].config.clone()).unwrap();
    let baseline = XCleanEngine::from_corpus(
        CorpusIndex::build(generate_dblp(&DblpConfig {
            publications: 30,
            ..Default::default()
        })),
        loaded.corpora[0].config.clone(),
    );
    let a = baseline.suggest("databse");
    let b = engine.suggest("databse");
    assert_eq!(a.suggestions.len(), b.suggestions.len());
    for (x, y) in a.suggestions.iter().zip(&b.suggestions) {
        assert_eq!(x.terms, y.terms);
        assert_eq!(x.log_score.to_bits(), y.log_score.to_bits());
    }

    // Delete one shard: assembly must fail naming exactly that file.
    let gone = dir.join("dblp-shard1-of-3.xci");
    std::fs::remove_file(&gone).unwrap();
    let err = ShardedEngine::load_snapshots(&paths, loaded.corpora[0].config.clone())
        .expect_err("missing shard must fail");
    match &err {
        ShardedEngineError::Snapshot { path, .. } => {
            assert!(
                path.contains("dblp-shard1-of-3.xci"),
                "error names the wrong path: {path}"
            );
        }
        other => panic!("expected Snapshot error, got {other}"),
    }
    assert!(
        err.to_string().contains("dblp-shard1-of-3.xci"),
        "display must carry the path: {err}"
    );
}
