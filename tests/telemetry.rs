//! Telemetry integration harness.
//!
//! Three contracts over a generated corpus and workload (fixed seeds, so
//! every run exercises the same inputs):
//!
//! 1. **Zero interference** — suggestions with span tracing enabled are
//!    bit-identical (same terms, same `f64` score bits) to suggestions
//!    from an engine with telemetry disabled, sequentially and through
//!    the `suggest_many` worker pool.
//! 2. **Lifetime aggregation** — the engine's metrics registry equals the
//!    sum of the per-response `RunStats`, however many worker threads
//!    recorded into it.
//! 3. **Exporters** — the chrome trace is valid JSON with complete
//!    (`ph == "X"`) events covering every pipeline stage, and the
//!    Prometheus text rendering carries counter and summary markers.

use xclean_suite::datagen::{generate_dblp, make_workload, DblpConfig, Perturbation, WorkloadSpec};
use xclean_suite::telemetry::{names, Telemetry};
use xclean_suite::xclean::{SuggestResponse, XCleanConfig, XCleanEngine};

fn engine_with(threads: usize, telemetry: Telemetry) -> XCleanEngine {
    XCleanEngine::new(
        generate_dblp(&DblpConfig {
            publications: 600,
            ..Default::default()
        }),
        XCleanConfig {
            num_threads: threads,
            batch_size: 4,
            ..Default::default()
        },
    )
    .with_telemetry(telemetry)
}

fn workload(engine: &XCleanEngine) -> Vec<Vec<String>> {
    let mut queries = Vec::new();
    for (p, n, seed) in [(Perturbation::Clean, 15, 5), (Perturbation::Rand, 25, 6)] {
        let set = make_workload(
            engine.corpus(),
            &WorkloadSpec {
                n_queries: n,
                seed,
                ..WorkloadSpec::dblp(p)
            },
        );
        queries.extend(set.cases.into_iter().map(|c| c.dirty));
    }
    queries
}

fn assert_bit_identical(a: &SuggestResponse, b: &SuggestResponse) {
    assert_eq!(a.suggestions.len(), b.suggestions.len());
    for (x, y) in a.suggestions.iter().zip(b.suggestions.iter()) {
        assert_eq!(x.terms, y.terms);
        assert_eq!(x.log_score.to_bits(), y.log_score.to_bits());
        assert_eq!(x.distances, y.distances);
        assert_eq!(x.entity_count, y.entity_count);
    }
}

#[test]
fn tracing_does_not_change_any_suggestion() {
    for threads in [1usize, 4] {
        let plain = engine_with(threads, Telemetry::disabled());
        let traced = engine_with(threads, Telemetry::with_tracing());
        let queries = workload(&plain);
        let plain_rs = plain.suggest_many_keywords(&queries);
        let traced_rs = traced.suggest_many_keywords(&queries);
        assert!(
            !traced.tracer().finished_spans().is_empty(),
            "tracing engine must actually record spans"
        );
        assert!(plain.tracer().finished_spans().is_empty());
        for (a, b) in plain_rs.iter().zip(traced_rs.iter()) {
            assert_bit_identical(a, b);
        }
    }
}

#[test]
fn engine_metrics_aggregate_across_worker_pool() {
    let engine = engine_with(4, Telemetry::disabled());
    let queries = workload(&engine);
    let responses = engine.suggest_many_keywords(&queries);
    let m = engine.metrics();

    assert_eq!(m.counter_value(names::QUERIES), Some(queries.len() as u64));
    let expect = |f: fn(&SuggestResponse) -> u64| responses.iter().map(f).sum::<u64>();
    assert_eq!(
        m.counter_value(names::SUGGESTIONS),
        Some(expect(|r| r.suggestions.len() as u64))
    );
    assert_eq!(
        m.counter_value(names::SUBTREES),
        Some(expect(|r| r.stats.subtrees))
    );
    assert_eq!(
        m.counter_value(names::CANDIDATES),
        Some(expect(|r| r.stats.candidates_enumerated))
    );
    assert_eq!(
        m.counter_value(names::ENTITIES),
        Some(expect(|r| r.stats.entities_scored))
    );
    assert_eq!(
        m.counter_value(names::POSTINGS_READ),
        Some(expect(|r| r.stats.access.read))
    );
    assert_eq!(
        m.counter_value(names::SKIP_CALLS),
        Some(expect(|r| r.stats.access.skip_calls))
    );

    // Every stage histogram saw one sample per query, with a positive sum
    // and ordered quantiles (the ≥ 1-nanosecond guarantee end to end).
    for stage in [
        names::STAGE_SLOT,
        names::STAGE_WALK,
        names::STAGE_RANK,
        names::STAGE_TOTAL,
    ] {
        let s = m.histogram_summary(stage).expect(stage);
        assert_eq!(s.count, queries.len() as u64, "{stage}");
        assert!(s.sum > 0, "{stage}");
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "{stage}: {s:?}");
        assert!(s.p50 >= 1, "{stage}: clamped stage times are never zero");
    }
    // Partition-walk samples: one per scoring partition per query.
    let parts = m
        .histogram_summary(names::STAGE_PARTITION)
        .expect("partition histogram");
    assert_eq!(
        parts.count,
        expect(|r| r.stats.score_partitions),
        "one partition-walk sample per scoring partition"
    );
}

#[test]
fn chrome_trace_covers_the_pipeline() {
    let engine = engine_with(1, Telemetry::with_tracing());
    let queries = workload(&engine);
    engine.suggest_many_keywords(&queries[..4]);

    let spans = engine.tracer().finished_spans();
    for expected in [
        "suggest",
        "slot_build",
        "variant_gen",
        "walk_accumulate",
        "rank",
    ] {
        assert!(
            spans.iter().any(|s| s.name == expected),
            "missing span {expected}"
        );
    }
    // Hierarchy: every slot_build span is a child of a suggest span.
    for s in spans.iter().filter(|s| s.name == "slot_build") {
        let parent = s.parent.expect("slot_build has a parent");
        let p = spans.iter().find(|c| c.id == parent).expect("parent span");
        assert_eq!(p.name, "suggest");
    }

    let json = engine.tracer().chrome_trace_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid trace JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents");
    assert_eq!(events.len(), spans.len());
    for e in events {
        assert_eq!(e["ph"].as_str(), Some("X"));
        assert!(e["name"].as_str().is_some());
        assert!(e["tid"].as_u64().is_some());
    }
}

#[test]
fn prometheus_text_has_counter_and_histogram_markers() {
    let engine = engine_with(1, Telemetry::disabled());
    engine.suggest("database systems");
    let text = engine.metrics().metrics_text();
    assert!(text.contains("# TYPE xclean_queries_total counter"));
    assert!(text.contains("xclean_queries_total 1"));
    assert!(text.contains("# TYPE xclean_stage_total_nanos histogram"));
    assert!(text.contains("xclean_stage_total_nanos_bucket{le=\"+Inf\"} 1"));
    assert!(text.contains("xclean_stage_total_nanos_count 1"));
}
