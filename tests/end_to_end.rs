//! End-to-end quality tests over generated corpora: the full pipeline
//! (generate → index → perturb → suggest → evaluate) must reproduce the
//! paper's headline claims in miniature.

use xclean_suite::datagen::{generate_dblp, make_workload, DblpConfig, Perturbation, WorkloadSpec};
use xclean_suite::eval::datasets::build_search_engines;
use xclean_suite::eval::harness::run_set;
use xclean_suite::eval::systems::{Py08Suggester, SeSuggester, XCleanSuggester};
use xclean_suite::xclean::{Semantics, XCleanConfig, XCleanEngine};

fn dblp_engine() -> XCleanEngine {
    XCleanEngine::new(
        generate_dblp(&DblpConfig {
            publications: 1500,
            ..Default::default()
        }),
        XCleanConfig::default(),
    )
}

fn workload(engine: &XCleanEngine, p: Perturbation, n: usize) -> xclean_suite::datagen::QuerySet {
    make_workload(
        engine.corpus(),
        &WorkloadSpec {
            n_queries: n,
            ..WorkloadSpec::dblp(p)
        },
    )
}

/// Headline claim: XClean recovers most RAND-dirtied queries with the
/// truth near the top.
#[test]
fn xclean_mrr_is_high_on_rand() {
    let engine = dblp_engine();
    let set = workload(&engine, Perturbation::Rand, 30);
    let sys = XCleanSuggester::new(&engine);
    let r = run_set(&sys, &set, 10);
    assert!(r.mrr > 0.55, "XClean MRR {} too low", r.mrr);
}

/// Headline claim (Fig. 3): XClean beats PY08 on dirty query sets.
#[test]
fn xclean_beats_py08_on_dirty_sets() {
    let engine = dblp_engine();
    let xclean = XCleanSuggester::new(&engine);
    let py08 = Py08Suggester::new(&engine, engine.corpus(), 100);
    for p in [Perturbation::Rand, Perturbation::Rule] {
        let set = workload(&engine, p, 30);
        let rx = run_set(&xclean, &set, 10);
        let rp = run_set(&py08, &set, 10);
        assert!(
            rx.mrr > rp.mrr,
            "{}: XClean {} vs PY08 {}",
            set.name,
            rx.mrr,
            rp.mrr
        );
    }
}

/// Claim (§VII-C): the search engines excel at *not* suggesting for clean
/// queries, but XClean is far better on random typos.
#[test]
fn search_engine_shape() {
    let engine = dblp_engine();
    let clean = workload(&engine, Perturbation::Clean, 30);
    let rand = workload(&engine, Perturbation::Rand, 30);
    let (se1, _) = build_search_engines(&[&clean]);
    let se1 = SeSuggester::new(se1, "SE1");
    let xclean = XCleanSuggester::new(&engine);
    let se_clean = run_set(&se1, &clean, 10);
    assert!(se_clean.mrr > 0.95, "SE clean MRR {}", se_clean.mrr);
    let se_rand = run_set(&se1, &rand, 10);
    let xc_rand = run_set(&xclean, &rand, 10);
    assert!(
        xc_rand.mrr > se_rand.mrr,
        "XClean {} vs SE {} on RAND",
        xc_rand.mrr,
        se_rand.mrr
    );
}

/// Every suggestion XClean produces is *valid*: re-running the suggested
/// query finds it as its own top candidate with entities (non-empty
/// results) — the guarantee PY08 lacks.
#[test]
fn suggestions_are_always_valid() {
    let engine = dblp_engine();
    let set = workload(&engine, Perturbation::Rand, 15);
    for case in &set.cases {
        let r = engine.suggest_keywords(&case.dirty);
        for s in &r.suggestions {
            assert!(s.entity_count > 0, "empty-result suggestion {:?}", s.terms);
            // The suggested query, issued as-is, has itself as a valid
            // candidate (distance 0, non-empty).
            let again = engine.suggest_keywords(&s.terms);
            let self_rank = again.rank_of(&s.terms.iter().map(String::as_str).collect::<Vec<_>>());
            assert!(
                self_rank.is_some(),
                "suggestion {:?} not valid as its own query",
                s.terms
            );
        }
    }
}

/// SLCA semantics works on the data-centric corpus (§VI-B: "equally well
/// on the DBLP dataset").
#[test]
fn slca_semantics_works_on_dblp() {
    let engine = dblp_engine();
    let set = workload(&engine, Perturbation::Rand, 20);
    let slca_engine = XCleanEngine::new(
        generate_dblp(&DblpConfig {
            publications: 1500,
            ..Default::default()
        }),
        XCleanConfig::default(),
    )
    .with_semantics(Semantics::Slca);
    let sys = XCleanSuggester::new(&slca_engine);
    let r = run_set(&sys, &set, 10);
    assert!(r.mrr > 0.5, "SLCA MRR {}", r.mrr);
}

/// Clean queries keep their meaning: the original query is ranked at or
/// near the top for the vast majority of CLEAN cases.
#[test]
fn clean_queries_survive() {
    let engine = dblp_engine();
    let set = workload(&engine, Perturbation::Clean, 30);
    let sys = XCleanSuggester::new(&engine);
    let r = run_set(&sys, &set, 10);
    assert!(r.mrr > 0.55, "CLEAN MRR {}", r.mrr);
    // The paper's own DBLP-CLEAN MRR is 0.78 — XClean legitimately ranks
    // other valid queries above the original sometimes, so the bar here
    // is deliberately moderate.
    assert!(r.precision_at[9] > 0.65, "P@10 {}", r.precision_at[9]);
}
