//! Determinism harness for the parallel batched suggestion engine.
//!
//! The contract under test (DESIGN.md, "Concurrency & batching"): for any
//! worker-thread count, `suggest_many` returns *bit-identical* responses —
//! same suggestions, same order, same `f64` score bits — to calling the
//! sequential `suggest` path query by query. The corpus and the ~200-query
//! workload are generated from fixed seeds, so every run of this test (and
//! every machine) exercises the same inputs.

use xclean_suite::datagen::{generate_dblp, make_workload, DblpConfig, Perturbation, WorkloadSpec};
use xclean_suite::xclean::{SuggestResponse, XCleanConfig, XCleanEngine};

/// Builds the shared corpus and the mixed determinism workload:
/// ~200 queries drawn from all three perturbation families.
fn corpus_and_queries() -> (XCleanEngine, Vec<Vec<String>>) {
    let engine = XCleanEngine::new(
        generate_dblp(&DblpConfig {
            publications: 1200,
            ..Default::default()
        }),
        XCleanConfig::default(),
    );
    let mut queries = Vec::new();
    for (p, n, seed) in [
        (Perturbation::Clean, 60, 11),
        (Perturbation::Rand, 80, 22),
        (Perturbation::Rule, 60, 33),
    ] {
        let set = make_workload(
            engine.corpus(),
            &WorkloadSpec {
                n_queries: n,
                seed,
                ..WorkloadSpec::dblp(p)
            },
        );
        queries.extend(set.cases.into_iter().map(|c| c.dirty));
    }
    assert!(
        queries.len() >= 190,
        "workload came up short: {}",
        queries.len()
    );
    (engine, queries)
}

/// Exact (bit-level) equality of two responses, with a query label for
/// diagnosis. Timings are excluded — they are the only fields allowed to
/// differ between runs.
fn assert_identical(q: &[String], a: &SuggestResponse, b: &SuggestResponse) {
    let label = q.join(" ");
    assert_eq!(
        a.suggestions.len(),
        b.suggestions.len(),
        "suggestion count diverged for {label:?}"
    );
    for (i, (x, y)) in a.suggestions.iter().zip(b.suggestions.iter()).enumerate() {
        assert_eq!(x.terms, y.terms, "terms diverged at rank {i} for {label:?}");
        assert_eq!(
            x.log_score.to_bits(),
            y.log_score.to_bits(),
            "score bits diverged at rank {i} for {label:?}: {} vs {}",
            x.log_score,
            y.log_score
        );
        assert_eq!(x.tokens, y.tokens, "tokens diverged for {label:?}");
        assert_eq!(x.distances, y.distances, "distances diverged for {label:?}");
        assert_eq!(
            x.entity_count, y.entity_count,
            "entity count diverged for {label:?}"
        );
    }
    // Walk-level counters must replay identically as well.
    assert_eq!(
        a.stats.candidates_enumerated, b.stats.candidates_enumerated,
        "candidate enumeration diverged for {label:?}"
    );
    assert_eq!(
        a.stats.entities_scored, b.stats.entities_scored,
        "entities scored diverged for {label:?}"
    );
    assert_eq!(
        a.stats.access.skip_calls, b.stats.access.skip_calls,
        "skip_to accounting diverged for {label:?}"
    );
}

/// The tentpole guarantee: `suggest_many` at 1, 2, and 8 threads is
/// bit-identical to the sequential per-query path over the whole corpus.
#[test]
fn suggest_many_is_bit_identical_across_thread_counts() {
    let (engine, queries) = corpus_and_queries();
    let baseline: Vec<SuggestResponse> =
        queries.iter().map(|q| engine.suggest_keywords(q)).collect();
    for threads in [1usize, 2, 8] {
        let pooled = XCleanEngine::from_shared(
            engine.corpus_shared(),
            XCleanConfig {
                num_threads: threads,
                batch_size: 7, // deliberately not a divisor of the workload
                ..Default::default()
            },
        );
        let batched = pooled.suggest_many_keywords(&queries);
        assert_eq!(batched.len(), queries.len());
        for (q, (a, b)) in queries.iter().zip(baseline.iter().zip(batched.iter())) {
            assert_identical(q, a, b);
        }
    }
}

/// Intra-query candidate partitioning (num_threads on the single-query
/// path) must also be invisible in the output.
#[test]
fn single_query_parallel_scoring_is_bit_identical() {
    let (engine, queries) = corpus_and_queries();
    let parallel = XCleanEngine::from_shared(
        engine.corpus_shared(),
        XCleanConfig {
            num_threads: 4,
            ..Default::default()
        },
    );
    // A slice of the workload keeps this test fast; the batched test
    // above covers all ~200 queries.
    for q in queries.iter().take(40) {
        assert_identical(
            q,
            &engine.suggest_keywords(q),
            &parallel.suggest_keywords(q),
        );
    }
}

/// Bit-identity must survive a γ that actually binds: with γ = 4, real
/// ε=2 multi-keyword queries overflow the accumulator budget, so the
/// exactness gate falls back to sequential scoring for them instead of
/// letting partition-local eviction diverge (DESIGN.md, "γ-eviction
/// exactness gate"). Pruning stats are compared too — under the gate
/// they come from the same global table on both paths.
#[test]
fn binding_gamma_is_bit_identical_across_thread_counts() {
    let (engine, queries) = corpus_and_queries();
    let tight = XCleanConfig {
        gamma: Some(4),
        ..Default::default()
    };
    let sequential = XCleanEngine::from_shared(engine.corpus_shared(), tight.clone());
    let queries: Vec<Vec<String>> = queries.into_iter().take(60).collect();
    let baseline: Vec<SuggestResponse> = queries
        .iter()
        .map(|q| sequential.suggest_keywords(q))
        .collect();
    let mut pruned_somewhere = false;
    for threads in [2usize, 8] {
        let pooled = XCleanEngine::from_shared(
            engine.corpus_shared(),
            XCleanConfig {
                num_threads: threads,
                batch_size: 7,
                ..tight.clone()
            },
        );
        let batched = pooled.suggest_many_keywords(&queries);
        for (q, (a, b)) in queries.iter().zip(baseline.iter().zip(batched.iter())) {
            assert_identical(q, a, b);
            assert_eq!(
                a.stats.pruning,
                b.stats.pruning,
                "pruning outcome diverged for {:?}",
                q.join(" ")
            );
            pruned_somewhere |= b.stats.pruning.evictions > 0 || b.stats.pruning.rejected > 0;
        }
    }
    assert!(
        pruned_somewhere,
        "γ=4 never bound on this workload — the test exercises nothing"
    );
}

/// Repeated sequential runs are bit-identical too (no HashMap iteration
/// order, clock, or address-dependent behaviour leaks into scores).
#[test]
fn sequential_runs_are_reproducible() {
    let (engine, queries) = corpus_and_queries();
    for q in queries.iter().take(40) {
        let a = engine.suggest_keywords(q);
        let b = engine.suggest_keywords(q);
        assert_identical(q, &a, &b);
    }
}
