//! Offline stand-in for `serde`.
//!
//! The real serde's format-agnostic visitor machinery is far more than
//! this workspace needs: every consumer here serialises to JSON via
//! `serde_json`. So this stand-in collapses the data model to one tree
//! type, [`Content`] (re-exported by the vendored `serde_json` as
//! `Value`), and the [`Serialize`]/[`Deserialize`] traits convert to and
//! from it. The `derive` feature re-exports `#[derive(Serialize)]` from
//! the companion `serde_derive` proc-macro crate, mirroring upstream.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A JSON-shaped value tree: the single data model of this stand-in.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Content {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Content>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Content)>),
}

impl Content {
    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL: Content = Content::Null;

impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, i: usize) -> &Content {
        match self {
            Content::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Content> for &str {
    fn eq(&self, other: &Content) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Types serialisable into the [`Content`] tree.
pub trait Serialize {
    /// Converts the value into the data-model tree.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds the value, erroring with a human-readable message on
    /// shape mismatches.
    fn from_content(content: &Content) -> Result<Self, String>;
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, String> {
        Ok(content.clone())
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::Number(n) => Ok(*n as $t),
                    other => Err(format!(
                        "expected number, found {other:?} for {}",
                        stringify!($t)
                    )),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, String> {
        content
            .as_bool()
            .ok_or_else(|| format!("expected bool, found {content:?}"))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, String> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, found {content:?}"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Array(items) => items.iter().map(T::from_content).collect(),
            other => Err(format!("expected array, found {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Array(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Array(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_content(&self) -> Content {
        let mut fields: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_eq_sugar() {
        let v = Content::Object(vec![
            ("name".into(), Content::String("xclean".into())),
            ("k".into(), Content::Number(10.0)),
        ]);
        assert_eq!(v["name"], "xclean");
        assert_eq!(v["k"].as_u64(), Some(10));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn roundtrip_vec() {
        let c = vec![1i32, 2, 3].to_content();
        assert_eq!(Vec::<i32>::from_content(&c).unwrap(), vec![1, 2, 3]);
    }
}
