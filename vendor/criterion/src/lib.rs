//! Offline stand-in for `criterion`.
//!
//! A wall-clock micro-benchmark harness covering the API subset this
//! workspace's `harness = false` benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function,
//! bench_with_input, finish}`, `Bencher::{iter, iter_with_setup}`,
//! `BenchmarkId::new`, `Throughput` and the `criterion_group!` /
//! `criterion_main!` macros. No statistical analysis or HTML reports —
//! each benchmark prints min / mean / max per-iteration time (and derived
//! throughput when configured) to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Upstream parses CLI filters here; the stand-in runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.render(None), self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group sharing sample-size / throughput settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares input size so the report can derive a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &id.render(Some(&self.name)),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs a parameterised benchmark; `input` is passed back to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.render(Some(&self.name));
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher, input);
        report(&label, self.throughput, &bencher.samples);
        self
    }

    /// Ends the group (upstream flushes reports here; the stand-in prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies a benchmark, optionally with a parameter suffix.
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: Option<&str>) -> String {
        let mut out = String::new();
        if let Some(g) = group {
            out.push_str(g);
            out.push('/');
        }
        out.push_str(&self.name);
        if let Some(p) = &self.parameter {
            out.push('/');
            out.push_str(p);
        }
        out
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Input magnitude used to derive a processing rate in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
}

/// Samples per benchmark. `bench_with_input` constructs the `Bencher`
/// before the closure runs, so the count is fixed here rather than read
/// from group config at call time.
const DEFAULT_SAMPLES: usize = 20;

impl Bencher {
    /// Times `routine`, recording one sample per call after a short warmup.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let samples = if self.samples.capacity() > 0 {
            self.samples.capacity()
        } else {
            DEFAULT_SAMPLES
        };
        // Warmup: a couple of untimed runs to fault in caches/allocs.
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`iter`](Self::iter) but excludes `setup` from the timing.
    pub fn iter_with_setup<I, R, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let samples = if self.samples.capacity() > 0 {
            self.samples.capacity()
        } else {
            DEFAULT_SAMPLES
        };
        black_box(routine(setup()));
        self.samples.clear();
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut bencher);
    report(label, throughput, &bencher.samples);
}

fn report(label: &str, throughput: Option<Throughput>, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    let rate = throughput.map(|t| {
        let per_sec = match t {
            Throughput::Bytes(n) => (n as f64 / mean.as_secs_f64(), "B/s"),
            Throughput::Elements(n) => (n as f64 / mean.as_secs_f64(), "elem/s"),
        };
        format!("  {:.3e} {}", per_sec.0, per_sec.1)
    });
    println!(
        "{label:<48} time: [{} {} {}]{}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        rate.unwrap_or_default()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a runner function named `$name`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups (for `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a.wrapping_add(b))
    }

    #[test]
    fn group_runs_benches_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(BenchmarkId::new("sum", 1000), &1000u64, |b, &n| {
            b.iter(|| sum_to(n))
        });
        group.bench_function("sum_fixed", |b| b.iter(|| sum_to(100)));
        group.finish();
    }

    #[test]
    fn iter_with_setup_times_only_routine() {
        let mut c = Criterion::default();
        c.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u32; 64], |v| v.iter().sum::<u32>())
        });
    }
}
