//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Matches the `parking_lot` API shape the workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (poisoning is absorbed by
//! taking the inner value from a poisoned lock, mirroring `parking_lot`'s
//! poison-free semantics).

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
