//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: the [`Rng`] extension trait
//! (`gen_range`, `gen_bool`, `gen`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic for a given seed, which is all the synthetic-data and
//! property-test callers rely on (streams do **not** match upstream
//! `rand`'s `StdRng`, so seeds produce different but equally reproducible
//! corpora).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the full value domain via
/// `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Value types `Rng::gen_range` can draw. The blanket [`SampleRange`]
/// impls below tie the range's element type directly to the output type,
/// which is what lets integer literals like `b'a' + rng.gen_range(0..26)`
/// infer `u8` the way upstream rand does.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = uniform_u128(rng, span);
                ((lo as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        rng.next_u64() as u16
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}
impl Standard for i8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i8 {
        rng.next_u64() as i8
    }
}
impl Standard for i16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i16 {
        rng.next_u64() as i16
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i32 {
        rng.next_u64() as i32
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}
impl Standard for isize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> isize {
        rng.next_u64() as isize
    }
}

/// Uniform draw in `[0, span)` by rejection sampling (unbiased).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Zone-based rejection to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span) as u128;
            }
        }
    }
    // Spans wider than u64 never occur for the integer types above.
    let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    v % span
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let u: f64 = Standard::sample(self);
        u < p
    }

    /// Draws a value of `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        Standard::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Draws one value from a fresh clock-seeded generator, like
/// `rand::random` upstream (minus the thread-local caching).
pub fn random<T: Standard>() -> T {
    Standard::sample(&mut thread_rng())
}

/// A convenience process-global generator seeded from the system clock.
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    rngs::StdRng::seed_from_u64(nanos)
}

/// Commonly imported names.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
