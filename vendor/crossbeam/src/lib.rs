//! Offline stand-in for `crossbeam`.
//!
//! Provides the two facilities this workspace uses:
//!
//! * [`scope`] — scoped threads, implemented over `std::thread::scope`
//!   with crossbeam's `Result`-returning signature;
//! * [`channel`] — multi-producer **multi-consumer** channels (std's mpsc
//!   receivers cannot be shared; the worker pools here need competing
//!   consumers), implemented with a `Mutex<VecDeque>` + `Condvar`.

pub mod channel;

use std::panic::AssertUnwindSafe;
use std::thread;

/// A handle to a thread spawned inside [`scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        self.inner.join()
    }
}

/// The spawner handed to the [`scope`] closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so
    /// nested spawns compile (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: inner_scope.spawn(move || {
                let scope = Scope { inner: inner_scope };
                f(&scope)
            }),
        }
    }
}

/// Runs `f` with a scope in which borrowing, scoped threads can be
/// spawned; joins them all before returning. Returns `Err` when a
/// spawned thread (or `f` itself) panicked — crossbeam's contract, where
/// std's `thread::scope` would re-raise the panic instead.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        })
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_environment() {
        let counter = AtomicUsize::new(0);
        let r = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(r, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panicking_worker_yields_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_compiles() {
        let v = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| v.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(v.load(Ordering::Relaxed), 1);
    }
}
