//! Multi-producer, multi-consumer FIFO channels.
//!
//! Unlike `std::sync::mpsc`, receivers are `Clone + Sync`, so a pool of
//! workers can compete for jobs from one queue — the property the batched
//! suggestion engine relies on. Backed by a `Mutex<VecDeque>` plus two
//! `Condvar`s (not-empty / not-full).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a closed channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, closed channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// The sending half; cheap to clone.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cheap to clone, and clones *compete* for items.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded channel; `send` blocks when `cap` items are queued.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while a bounded channel is full. Errors
    /// when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if state.items.len() >= cap => {
                    state = self.shared.not_full.wait(state).unwrap();
                }
                _ => break,
            }
        }
        state.items.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next item, blocking while the channel is empty. Errors
    /// once the channel is empty *and* every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Non-blocking dequeue.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.queue.lock().unwrap();
        if let Some(item) = state.items.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(item);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Drains the channel until all senders disconnect (blocking iterator).
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Blocking iterator over received items; ends on disconnect.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn competing_consumers_partition_items() {
        let (tx, rx) = unbounded::<usize>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let producer = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees up
            "done"
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(producer.join().unwrap(), "done");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }
}
