//! Offline stand-in for `serde_derive`.
//!
//! Supports `#[derive(Serialize)]` on plain (non-generic) structs with
//! named fields — the only shape this workspace derives. Parsing is done
//! directly over the token stream (no `syn`/`quote`, which are not
//! available offline): a field name is the identifier immediately before
//! each top-level `:` in the struct body, where "top level" means outside
//! any `<…>` nesting so types like `Vec<(String, f64)>` don't confuse the
//! field splitter.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by mapping each named field into a
/// `serde::Content::Object` entry.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut name: Option<String> = None;
    let mut body: Option<TokenStream> = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tok) = iter.next() {
        match tok {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                let Some(TokenTree::Ident(n)) = iter.next() else {
                    panic!("derive(Serialize): expected a struct name");
                };
                name = Some(n.to_string());
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        body = Some(g.stream());
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("derive(Serialize): generic structs are not supported by the vendored serde_derive");
                    }
                    _ => panic!(
                        "derive(Serialize): only structs with named fields are supported by the vendored serde_derive"
                    ),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                panic!("derive(Serialize): enums are not supported by the vendored serde_derive");
            }
            _ => {}
        }
    }
    let name = name.expect("derive(Serialize): no struct found");
    let body = body.expect("derive(Serialize): struct body missing");
    let fields = field_names(body);

    let entries: String = fields
        .iter()
        .map(|f| format!("(String::from(\"{f}\"), serde::Serialize::to_content(&self.{f})),"))
        .collect();
    let impl_src = format!(
        "impl serde::Serialize for {name} {{\n\
         \tfn to_content(&self) -> serde::Content {{\n\
         \t\tserde::Content::Object(vec![{entries}])\n\
         \t}}\n\
         }}"
    );
    impl_src
        .parse()
        .expect("derive(Serialize): generated impl must parse")
}

/// Splits the brace body into fields at top-level commas (tracking `<…>`
/// depth) and returns the identifier preceding each field's `:`.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth: i32 = 0;
    // Tokens of the current field up to (and excluding) its ':'.
    let mut head: Vec<TokenTree> = Vec::new();
    let mut seen_colon = false;
    for tok in body {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if let Some(name) = last_ident(&head) {
                        fields.push(name);
                    }
                    head.clear();
                    seen_colon = false;
                    continue;
                }
                ':' if angle_depth == 0 && !seen_colon => {
                    seen_colon = true;
                    continue;
                }
                _ => {}
            }
        }
        if !seen_colon {
            head.push(tok);
        }
    }
    if let Some(name) = last_ident(&head) {
        fields.push(name);
    }
    fields
}

/// The field identifier: the last plain ident of the pre-`:` tokens
/// (skips `#[…]` attributes and `pub`/`pub(crate)` visibility).
fn last_ident(head: &[TokenTree]) -> Option<String> {
    head.iter().rev().find_map(|t| match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    })
}
