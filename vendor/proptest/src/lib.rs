//! Offline stand-in for `proptest`.
//!
//! Implements the API subset this workspace uses: the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros, `ProptestConfig::with_cases`,
//! integer-range / char-range / tuple strategies, the
//! `proptest::collection::{vec, btree_set, btree_map}` combinators and
//! `&'static str` character-class regex strategies (`"[a-zA-Z]{1,20}"`).
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! case number and assertion message. Generation is fully deterministic —
//! each test function derives its RNG seed from its own name, so failures
//! reproduce exactly across runs and thread counts.

use std::ops::{Range, RangeInclusive};

// Lets this crate's own tests (and the macro examples) use absolute
// `proptest::…` paths the way downstream crates do.
extern crate self as proptest;

pub mod test_runner {
    //! Deterministic RNG driving case generation.

    /// SplitMix64 generator; statistically fine for test-case generation
    /// and trivially reproducible.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a label (the test function name).
        pub fn deterministic(label: &str) -> Self {
            let mut seed = 0x9E37_79B9_7F4A_7C15u64;
            for b in label.bytes() {
                seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform-ish value in `[0, n)`. Modulo bias is irrelevant at
        /// test-generation scale and keeps the generator simple.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// A source of deterministic test values.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&'static str` character-class patterns like `"[a-zA-Z]{1,20}"`.
/// Supported shape: one `[...]` class (literals and `x-y` ranges) followed
/// by a `{min,max}` or `{n}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{m,n}` / `[class]{n}` into (expanded chars, m, n).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class_src: Vec<char> = rest[..close].chars().collect();
    let mut class = Vec::new();
    let mut i = 0;
    while i < class_src.len() {
        if i + 2 < class_src.len() && class_src[i + 1] == '-' {
            let (lo, hi) = (class_src[i], class_src[i + 2]);
            for c in lo..=hi {
                class.push(c);
            }
            i += 3;
        } else {
            class.push(class_src[i]);
            i += 1;
        }
    }
    if class.is_empty() {
        return None;
    }
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match reps.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((class, min, max))
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

pub mod collection {
    //! Collection strategies: `vec`, `btree_set`, `btree_map`.

    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Vector of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = pick_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Ordered set of `element` values; aims for a size drawn from `size`
    /// (may fall short when the element domain is small, as upstream).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = pick_len(&self.size, rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 32 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Ordered map from `key` to `value` strategies, sized like `btree_set`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = pick_len(&self.size, rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 32 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    fn pick_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        size.start + rng.below((size.end - size.start) as u64) as usize
    }
}

pub mod char {
    //! Char strategies.

    use super::{Strategy, TestRng};

    /// Uniform char in the inclusive range `[lo, hi]`.
    pub fn range(lo: ::core::primitive::char, hi: ::core::primitive::char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange { lo, hi }
    }

    /// Strategy returned by [`range`].
    pub struct CharRange {
        lo: ::core::primitive::char,
        hi: ::core::primitive::char,
    }

    impl Strategy for CharRange {
        type Value = ::core::primitive::char;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Sample scalar values, skipping the surrogate gap by retrying.
            let (lo, hi) = (self.lo as u32, self.hi as u32);
            loop {
                let v = lo + rng.below((hi - lo + 1) as u64) as u32;
                if let Some(c) = ::core::char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

pub mod config {
    //! Run configuration.

    /// How many cases each property runs. Upstream defaults to 256; this
    /// stand-in defaults to 64 for faster offline test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::config::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Declares deterministic property tests. Each `fn name(arg in strategy, ...)
/// { body }` item becomes a test running `cases` generated inputs; the
/// user-supplied attributes (typically `#[test]`) pass through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            config = <$crate::config::ProptestConfig as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$attr:meta])*
     fn $name:ident( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $( let $arg = $crate::Strategy::generate(&$strat, &mut __rng); )+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!("property '{}' failed at case {}: {}", stringify!($name), __case, __msg);
                }
            }
        }
        $crate::__proptest_items!{ config = $config; $($rest)* }
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the whole
/// process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside `proptest!` with `Debug` reporting of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            ));
        }
    }};
}

// Re-exported at the root so `use proptest::prelude::*` plus absolute
// paths like `proptest::collection::vec` both work, as with upstream.
pub use config::ProptestConfig;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = crate::test_runner::TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-cx]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.chars().count()), "bad len: {s:?}");
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | 'x')), "{s:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen_once = || {
            let mut rng = crate::test_runner::TestRng::deterministic("det");
            let strat = crate::collection::vec(0u32..100, 1..8);
            (0..16)
                .map(|_| crate::Strategy::generate(&strat, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_once(), gen_once());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_runs_and_ranges_hold(
            x in 3u32..17,
            s in proptest::collection::btree_set(0u8..10, 0..6),
            (a, b) in (0i32..5, 10usize..20),
            c in proptest::char::range('a', 'f'),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(s.len() < 6, "set too big: {:?}", s);
            prop_assert_eq!(a / 5, 0);
            prop_assert!((10..20).contains(&b));
            prop_assert!(('a'..='f').contains(&c));
        }
    }
}
