//! Offline stand-in for `serde_json`.
//!
//! Re-exports the vendored serde `Content` tree as [`Value`] and provides
//! the printer ([`to_string`], [`to_string_pretty`]), a recursive-descent
//! parser ([`from_str`]) and the [`json!`] construction macro — the API
//! subset this workspace uses.

pub use serde::Content as Value;

#[doc(hidden)]
pub use serde::Serialize as __Serialize;

use std::fmt;

/// Serialisation / parse error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// Result alias matching upstream's `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Serialises a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialises a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&value).map_err(Error::new)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; upstream serialises these as null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (possibly multi-byte).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

/// Constructs a [`Value`] from JSON-like syntax. Supports the shapes this
/// workspace uses: object literals with expression values, arrays,
/// scalars and interpolated `Serialize` expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $item:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__Serialize::to_content(&$item) ),* ])
    };
    ({ $( $key:tt : $value:expr ),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (String::from($key), $crate::__Serialize::to_content(&$value)) ),*
        ])
    };
    ($other:expr) => {
        $crate::__Serialize::to_content(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = json!({
            "query": "health insurance",
            "k": 10,
            "scores": json!([1.5, 2.0]),
            "ok": true,
            "missing": Value::Null,
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["query"], "health insurance");
        assert_eq!(back["k"].as_u64(), Some(10));
        assert_eq!(back["scores"][1].as_f64(), Some(2.0));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#"{"s": "a\nbé😀"}"#).unwrap();
        assert_eq!(v["s"], "a\nbé😀");
    }

    #[test]
    fn compact_output_has_no_spaces() {
        let v = json!({"a": [1, 2]});
        assert_eq!(to_string(&v).unwrap(), r#"{"a":[1,2]}"#);
    }

    #[test]
    fn vec_roundtrip() {
        let xs = vec![3i32, 1, 4];
        let text = to_string(&xs).unwrap();
        let back: Vec<i32> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn negative_and_float_numbers() {
        let v: Value = from_str("[-3, 2.5e2, 0]").unwrap();
        assert_eq!(v[0].as_i64(), Some(-3));
        assert_eq!(v[1].as_f64(), Some(250.0));
        assert_eq!(v[2].as_u64(), Some(0));
    }
}
