//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses: [`Bytes`] (a cheaply
//! cloneable shared byte view), [`BytesMut`] (a growable buffer), and the
//! [`Buf`]/[`BufMut`] traits. Semantics match the real crate for this
//! subset; performance characteristics are close enough for an index
//! wire-format (the backing store is an `Arc<[u8]>`).

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice without copying the reference's
    /// contents more than once.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from_vec(s.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view; panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates a buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read-side cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes, contiguously.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes and returns one byte; panics when empty.
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consumes and returns a big-endian u32; panics when short.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32 on short buffer");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Consumes `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes past end");
        let out = Bytes::from_vec(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    /// Copies exactly `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice past end");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write-side sink for bytes.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut m = BytesMut::new();
        m.put_u8(1);
        m.put_slice(&[2, 3, 4]);
        m.put_u32(0xdead_beef);
        let mut b = m.freeze();
        assert_eq!(b.len(), 8);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.copy_to_bytes(3).to_vec(), vec![2, 3, 4]);
        assert_eq!(b.get_u32(), 0xdead_beef);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_and_clone_share() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[1, 2, 3]);
        assert_eq!(b.clone().to_vec(), vec![0, 1, 2, 3, 4]);
    }
}
