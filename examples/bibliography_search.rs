//! Bibliography scenario (the paper's motivating DBLP use case):
//! a user searching publications by author + topic mistypes keywords, and
//! XClean suggests valid alternatives while PY08 drifts to rare junk.
//!
//! ```sh
//! cargo run --release --example bibliography_search
//! ```

use xclean_suite::baselines::Py08;
use xclean_suite::datagen::{generate_dblp, DblpConfig};
use xclean_suite::xclean::{XCleanConfig, XCleanEngine};

fn main() {
    println!("generating synthetic DBLP bibliography…");
    let tree = generate_dblp(&DblpConfig {
        publications: 5_000,
        ..Default::default()
    });
    let engine = XCleanEngine::new(tree, XCleanConfig::default());
    let corpus = engine.corpus();
    println!(
        "  {} nodes, {} vocabulary terms\n",
        corpus.tree().len(),
        corpus.vocab().len()
    );
    let py08 = Py08::build(corpus, 5.0, 100);

    // Queries in the style of the paper's DBLP workload ("rose
    // architecture fpga"): an author surname plus contribution keywords,
    // taken from actual records so the clean query has results — then
    // dirtied with typos, exactly like the paper's RAND procedure.
    let tree = corpus.tree();
    let mut dirty_queries: Vec<(String, String)> = Vec::new();
    let mut record = tree.children(tree.root());
    while dirty_queries.len() < 5 {
        let Some(rec) = record.next() else { break };
        let mut author = None;
        let mut title_words: Vec<String> = Vec::new();
        for c in tree.children(rec) {
            match (tree.label_name(c), tree.text(c)) {
                ("author", Some(t)) => author = t.split_whitespace().last().map(str::to_string),
                ("title", Some(t)) => {
                    title_words = t
                        .split_whitespace()
                        .filter(|w| w.len() >= 6)
                        .take(2)
                        .map(str::to_string)
                        .collect()
                }
                _ => {}
            }
        }
        let (Some(author), [w1, w2]) = (author, title_words.as_slice()) else {
            continue;
        };
        let clean = format!("{author} {w1} {w2}");
        // Deterministic typos: drop a letter from each long content word.
        let typo = |w: &str| {
            let mut s = w.to_string();
            s.remove(w.len() / 2);
            s
        };
        let dirty = format!("{author} {} {}", typo(w1), typo(w2));
        dirty_queries.push((dirty, clean));
    }

    for (query, clean) in &dirty_queries {
        println!("query: {query:?}   (intended: {clean:?})");
        let keywords = engine.parse_query(query);
        let r = engine.suggest_keywords(&keywords);
        print!("  XClean:");
        if r.suggestions.is_empty() {
            print!("  (silent: no entity of the inferred result type contains all keywords)");
        }
        for s in r.suggestions.iter().take(3) {
            print!("  [{}]", s.query_string());
        }
        println!();
        let slots = engine.make_slots(&keywords);
        print!("  PY08  :");
        for c in py08.suggest(corpus, &slots, 3) {
            let terms: Vec<&str> = c.tokens.iter().map(|&t| corpus.vocab().term(t)).collect();
            print!("  [{}]", terms.join(" "));
        }
        println!("\n");
    }

    println!("note how PY08's picks drift toward rare tokens (unbounded idf)");
    println!("and need not co-occur anywhere — XClean's cannot, by construction.");
}
