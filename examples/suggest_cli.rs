//! Interactive query-cleaning CLI over an XML file or a generated corpus.
//!
//! ```sh
//! # over your own XML document
//! cargo run --release --example suggest_cli -- path/to/data.xml
//! # over the synthetic DBLP corpus
//! cargo run --release --example suggest_cli
//! ```
//!
//! Then type keyword queries; `:quit` exits. `:stats` prints corpus
//! statistics, `:slca` / `:nodetype` switch semantics.

use std::io::{self, BufRead, Write};

use xclean_suite::datagen::{generate_dblp, DblpConfig};
use xclean_suite::xclean::{Semantics, XCleanConfig, XCleanEngine};
use xclean_suite::xmltree::{parse_document, TreeStats};

fn main() {
    let tree = match std::env::args().nth(1) {
        Some(path) => {
            eprintln!("parsing {path}…");
            let text = std::fs::read_to_string(&path).expect("read XML file");
            parse_document(&text).expect("well-formed XML")
        }
        None => {
            eprintln!("no file given; generating a synthetic DBLP corpus…");
            generate_dblp(&DblpConfig {
                publications: 5_000,
                ..Default::default()
            })
        }
    };
    eprintln!("indexing {} nodes…", tree.len());
    let mut engine = XCleanEngine::new(tree, XCleanConfig::default());
    eprintln!(
        "ready: {} terms in vocabulary. Type a query (':quit' to exit).",
        engine.corpus().vocab().len()
    );

    let stdin = io::stdin();
    loop {
        print!("xclean> ");
        io::stdout().flush().ok();
        let Some(Ok(line)) = stdin.lock().lines().next() else {
            break;
        };
        let line = line.trim();
        match line {
            "" => continue,
            ":quit" | ":q" => break,
            ":stats" => {
                let s = TreeStats::compute(engine.corpus().tree());
                println!(
                    "nodes {}  max depth {}  avg depth {:.2}  node types {}  |V| {}",
                    s.node_count,
                    s.max_depth,
                    s.avg_depth,
                    s.distinct_paths,
                    engine.corpus().vocab().len()
                );
                continue;
            }
            ":slca" => {
                engine = engine.with_semantics(Semantics::Slca);
                println!("semantics: SLCA");
                continue;
            }
            ":nodetype" => {
                engine = engine.with_semantics(Semantics::NodeType);
                println!("semantics: node-type");
                continue;
            }
            _ => {}
        }
        let r = engine.suggest(line);
        if r.suggestions.is_empty() {
            println!("no valid suggestion (no candidate query has results)");
            continue;
        }
        for (i, s) in r.suggestions.iter().enumerate() {
            println!(
                "{:>2}. {:<50} score {:>9.3}  entities {:>5}  edits {:?}",
                i + 1,
                s.query_string(),
                s.log_score,
                s.entity_count,
                s.distances
            );
        }
        println!(
            "    [{:?}; {} subtrees, {} read / {} skipped postings]",
            r.elapsed, r.stats.subtrees, r.stats.access.read, r.stats.access.skipped
        );
    }
}
