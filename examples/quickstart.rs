//! Quickstart: build an engine over a small XML document and clean a
//! misspelt query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xclean_suite::xclean::{XCleanConfig, XCleanEngine};
use xclean_suite::xmltree::parse_document;

fn main() {
    // 1. Any XML document works; attributes count as child nodes.
    let xml = r#"
        <bibliography>
            <paper year="2011" venue="icde">
                <author>yifei lu</author>
                <author>wei wang</author>
                <title>xclean providing valid spelling suggestions for xml keyword queries</title>
            </paper>
            <paper year="2008" venue="sigmod">
                <author>ken pu</author>
                <title>keyword query cleaning</title>
            </paper>
            <paper year="2009" venue="www">
                <author>hinrich schutze</author>
                <title>introduction to information retrieval</title>
            </paper>
        </bibliography>"#;
    let tree = parse_document(xml).expect("well-formed XML");

    // 2. Build the engine (corpus index + FastSS variant index).
    let engine = XCleanEngine::new(tree, XCleanConfig::default());

    // 3. Clean a dirty query.
    for query in ["keywrd quer", "schutze retrieval", "spelling sugestions"] {
        let response = engine.suggest(query);
        println!("query: {query:?}");
        if response.suggestions.is_empty() {
            println!("  (no valid suggestion)");
        }
        for (rank, s) in response.suggestions.iter().enumerate().take(3) {
            println!(
                "  #{} {:<40} log-score {:>8.3}  entities {}  edits {:?}",
                rank + 1,
                s.query_string(),
                s.log_score,
                s.entity_count,
                s.distances,
            );
        }
        println!(
            "  ({} subtrees, {} postings read, {} skipped, {:?})\n",
            response.stats.subtrees,
            response.stats.access.read,
            response.stats.access.skipped,
            response.elapsed,
        );
    }
}
