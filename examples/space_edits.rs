//! The §VI-A extension: correcting queries whose errors change the number
//! of keywords (missing/spurious spaces), combined with ordinary typo
//! cleaning.
//!
//! ```sh
//! cargo run --release --example space_edits
//! ```

use xclean_suite::xclean::{expand_space_edits, XCleanConfig, XCleanEngine};
use xclean_suite::xmltree::parse_document;

fn main() {
    let xml = "<kb>\
        <article><t>powerpoint presentation design</t></article>\
        <article><t>power point alternatives</t></article>\
        <article><t>database systems survey</t></article>\
        <article><t>data base administration</t></article>\
    </kb>";
    let engine = XCleanEngine::new(parse_document(xml).unwrap(), XCleanConfig::default());

    for query in [
        "power point design",
        "powerpoint alternatives",
        "data base survey",
        "databse administration",
    ] {
        println!("query: {query:?}");
        let keywords = engine.parse_query(query);

        // τ = 1 space edits, validated against the vocabulary.
        let rewrites = expand_space_edits(engine.corpus(), &keywords, 1);
        println!("  space-edit rewrites considered: {}", rewrites.len());

        // Run each rewriting through the engine; rank all suggestions
        // together, charging one β-penalty per space edit (β = 5 default).
        let beta = engine.config().beta;
        let mut pooled: Vec<(f64, String, u32)> = Vec::new();
        for rw in &rewrites {
            let r = engine.suggest_keywords(&rw.keywords);
            for s in r.suggestions {
                pooled.push((
                    s.log_score - beta * f64::from(rw.edits),
                    s.query_string(),
                    rw.edits,
                ));
            }
        }
        pooled.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        pooled.dedup_by(|a, b| a.1 == b.1);
        for (score, q, edits) in pooled.iter().take(4) {
            println!("    [{q}]  score {score:.3}  space-edits {edits}");
        }
        println!();
    }
}
