//! Document-centric scenario (the paper's INEX/Wikipedia use case):
//! deep nested articles, large vocabulary, long virtual documents.
//! Demonstrates result-type inference — the same keywords map to
//! different entity types depending on where they co-occur — and the
//! SLCA semantics alternative.
//!
//! ```sh
//! cargo run --release --example wiki_search
//! ```

use xclean_suite::datagen::{generate_inex, InexConfig};
use xclean_suite::xclean::{Semantics, XCleanConfig, XCleanEngine};
use xclean_suite::xmltree::TreeStats;

fn main() {
    println!("generating synthetic encyclopedia…");
    let tree = generate_inex(&InexConfig {
        articles: 800,
        ..Default::default()
    });
    let stats = TreeStats::compute(&tree);
    println!(
        "  {} nodes, max depth {}, avg depth {:.2}, {} node types\n",
        stats.node_count, stats.max_depth, stats.avg_depth, stats.distinct_paths
    );

    let engine = XCleanEngine::new(tree, XCleanConfig::default());

    let queries = [
        "anciet history empire",
        "mountan river valley",
        "religous tradition festival",
    ];

    println!("— node-type semantics —");
    for q in queries {
        let r = engine.suggest(q);
        println!("query: {q:?}");
        for s in r.suggestions.iter().take(3) {
            let path = s
                .result_path
                .map(|p| {
                    engine
                        .corpus()
                        .tree()
                        .paths()
                        .display(p, engine.corpus().tree().labels())
                })
                .unwrap_or_default();
            println!(
                "  [{}]  result type {}  entities {}",
                s.query_string(),
                path,
                s.entity_count
            );
        }
        println!();
    }

    // The same corpus under SLCA semantics: entities become the smallest
    // subtrees containing all keywords instead of one inferred node type.
    println!("— SLCA semantics —");
    let slca = XCleanEngine::new(
        generate_inex(&InexConfig {
            articles: 800,
            ..Default::default()
        }),
        XCleanConfig::default(),
    )
    .with_semantics(Semantics::Slca);
    for q in queries {
        let r = slca.suggest(q);
        println!("query: {q:?}");
        for s in r.suggestions.iter().take(3) {
            println!("  [{}]  slca entities {}", s.query_string(), s.entity_count);
        }
        println!();
    }
}
