//! # xclean-suite
//!
//! Umbrella crate for the XClean reproduction. Re-exports the public API of
//! every workspace crate so examples and downstream users can depend on a
//! single crate:
//!
//! ```
//! use xclean_suite::xmltree::parse_document;
//! let tree = parse_document("<a><b>keyword search</b></a>").unwrap();
//! assert_eq!(tree.len(), 2);
//! ```

#![forbid(unsafe_code)]

pub use xclean;
pub use xclean_baselines as baselines;
pub use xclean_cli as cli;
pub use xclean_datagen as datagen;
pub use xclean_eval as eval;
pub use xclean_fastss as fastss;
pub use xclean_index as index;
pub use xclean_lm as lm;
pub use xclean_server as server;
pub use xclean_telemetry as telemetry;
pub use xclean_xmltree as xmltree;
