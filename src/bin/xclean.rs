//! Workspace-root `xclean` binary: a shim over [`xclean_cli::run`] so
//! that `cargo run --bin xclean` (and plain `cargo run`, via
//! `default-run`) work from the repository root exactly like
//! `cargo run -p xclean-cli`.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let out = xclean_cli::run(raw);
    for line in &out.lines {
        println!("{line}");
    }
    std::process::exit(out.code);
}
